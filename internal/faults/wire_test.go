package faults

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// fakeConn is an in-memory net.Conn write sink for wire-plan tests.
type fakeConn struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	closed bool
}

func (c *fakeConn) Read(b []byte) (int, error) { return 0, io.EOF }

func (c *fakeConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, net.ErrClosed
	}
	return c.buf.Write(b)
}

func (c *fakeConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

func (c *fakeConn) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.buf.Bytes()...)
}

func (c *fakeConn) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

type fakeAddr string

func (a fakeAddr) Network() string { return "fake" }
func (a fakeAddr) String() string  { return string(a) }

func (c *fakeConn) LocalAddr() net.Addr                { return fakeAddr("local") }
func (c *fakeConn) RemoteAddr() net.Addr               { return fakeAddr("remote") }
func (c *fakeConn) SetDeadline(t time.Time) error      { return nil }
func (c *fakeConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *fakeConn) SetWriteDeadline(t time.Time) error { return nil }

func mustWire(t *testing.T, cfg WireConfig) *WirePlan {
	t.Helper()
	p, err := NewWire(cfg)
	if err != nil {
		t.Fatalf("NewWire(%+v): %v", cfg, err)
	}
	return p
}

func TestWireNilPlanPassesThrough(t *testing.T) {
	var p *WirePlan
	if p.Enabled() {
		t.Fatal("nil plan reports Enabled")
	}
	if got := p.Counters(); got != (WireCounters{}) {
		t.Fatalf("nil plan counters = %+v", got)
	}
	c := &fakeConn{}
	if p.WrapConn(c) != net.Conn(c) {
		t.Fatal("nil plan should return the conn unchanged")
	}
}

func TestWireValidation(t *testing.T) {
	bad := []WireConfig{
		{TearProb: -0.1},
		{CorruptProb: 1.5},
		{TearProb: 0.5, TruncateProb: 0.3, DupProb: 0.3},
		{StallSec: -1},
	}
	for i, cfg := range bad {
		if _, err := NewWire(cfg); err == nil {
			t.Errorf("config %d (%+v): want error, got nil", i, cfg)
		}
	}
	if _, err := NewWire(WireConfig{}); err != nil {
		t.Errorf("zero config should be valid: %v", err)
	}
}

func TestWireTearClosesConn(t *testing.T) {
	p := mustWire(t, WireConfig{Seed: 1, TearProb: 1})
	c := &fakeConn{}
	w := p.WrapConn(c)
	if _, err := w.Write([]byte("hello")); err == nil {
		t.Fatal("torn write should error")
	}
	if !c.isClosed() {
		t.Fatal("torn write should close the conn")
	}
	if got := p.Counters().Torn; got != 1 {
		t.Fatalf("Torn = %d, want 1", got)
	}
}

func TestWireTruncateWritesPrefixAndCloses(t *testing.T) {
	p := mustWire(t, WireConfig{Seed: 1, TruncateProb: 1})
	c := &fakeConn{}
	w := p.WrapConn(c)
	msg := []byte("0123456789")
	if _, err := w.Write(msg); err == nil {
		t.Fatal("truncated write should error")
	}
	got := c.bytes()
	if len(got) == 0 || len(got) >= len(msg) {
		t.Fatalf("truncated %d of %d bytes, want a proper prefix", len(got), len(msg))
	}
	if !bytes.Equal(got, msg[:len(got)]) {
		t.Fatal("truncated bytes are not a prefix of the message")
	}
	if !c.isClosed() {
		t.Fatal("truncation should close the conn")
	}
	if got := p.Counters().Truncated; got != 1 {
		t.Fatalf("Truncated = %d, want 1", got)
	}
}

func TestWireCorruptFlipsBitsReportsSuccess(t *testing.T) {
	p := mustWire(t, WireConfig{Seed: 7, CorruptProb: 1})
	c := &fakeConn{}
	w := p.WrapConn(c)
	msg := bytes.Repeat([]byte{0xAA}, 64)
	n, err := w.Write(msg)
	if err != nil || n != len(msg) {
		t.Fatalf("corrupt write = (%d, %v), want (%d, nil)", n, err, len(msg))
	}
	got := c.bytes()
	if len(got) != len(msg) {
		t.Fatalf("corrupt write changed length: %d vs %d", len(got), len(msg))
	}
	if bytes.Equal(got, msg) {
		t.Fatal("corrupt write delivered identical bytes")
	}
	if got := p.Counters().Corrupted; got != 1 {
		t.Fatalf("Corrupted = %d, want 1", got)
	}
}

func TestWireDuplicateWritesTwice(t *testing.T) {
	p := mustWire(t, WireConfig{Seed: 1, DupProb: 1})
	c := &fakeConn{}
	w := p.WrapConn(c)
	msg := []byte("batch-1")
	if n, err := w.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("dup write = (%d, %v)", n, err)
	}
	want := append(append([]byte(nil), msg...), msg...)
	if !bytes.Equal(c.bytes(), want) {
		t.Fatalf("dup wrote %q, want %q", c.bytes(), want)
	}
	if got := p.Counters().Duplicated; got != 1 {
		t.Fatalf("Duplicated = %d, want 1", got)
	}
}

func TestWireReorderSwapsAdjacentMessages(t *testing.T) {
	p := mustWire(t, WireConfig{Seed: 1, ReorderProb: 1})
	c := &fakeConn{}
	w := p.WrapConn(c)
	if _, err := w.Write([]byte("AAA")); err != nil {
		t.Fatal(err)
	}
	if got := c.bytes(); len(got) != 0 {
		t.Fatalf("first reordered write should be held, got %q", got)
	}
	if _, err := w.Write([]byte("BBB")); err != nil {
		t.Fatal(err)
	}
	if got := c.bytes(); !bytes.Equal(got, []byte("AAA")) {
		t.Fatalf("after second write, wire holds %q, want the flushed first message", got)
	}
	if got := p.Counters().Reordered; got != 2 {
		t.Fatalf("Reordered = %d, want 2", got)
	}
}

func TestWireStallDelaysButDelivers(t *testing.T) {
	p := mustWire(t, WireConfig{Seed: 1, StallProb: 1, StallSec: 0.02})
	c := &fakeConn{}
	w := p.WrapConn(c)
	msg := []byte("0123456789abcdef")
	start := time.Now()
	if n, err := w.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("stalled write = (%d, %v)", n, err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("stalled write returned after %v, want >= ~20ms", elapsed)
	}
	if !bytes.Equal(c.bytes(), msg) {
		t.Fatal("stalled write should still deliver the full message")
	}
	if got := p.Counters().Stalled; got != 1 {
		t.Fatalf("Stalled = %d, want 1", got)
	}
}

func TestWireDeterministicReplay(t *testing.T) {
	run := func() ([]byte, WireCounters) {
		p := mustWire(t, WireConfig{
			Seed: 42, TearProb: 0.05, TruncateProb: 0.05, CorruptProb: 0.1,
			DupProb: 0.1, ReorderProb: 0.1,
		})
		c := &fakeConn{}
		w := p.WrapConn(c)
		for i := 0; i < 200; i++ {
			msg := bytes.Repeat([]byte{byte(i)}, 8+i%13)
			w.Write(msg) // errors expected once torn; keep writing
		}
		return c.bytes(), p.Counters()
	}
	b1, c1 := run()
	b2, c2 := run()
	if !bytes.Equal(b1, b2) {
		t.Fatal("same seed produced different wire bytes")
	}
	if c1 != c2 {
		t.Fatalf("same seed produced different counters: %+v vs %+v", c1, c2)
	}
	if c1 == (WireCounters{}) {
		t.Fatal("plan injected nothing over 200 messages")
	}
}

func TestAggressiveWirePreset(t *testing.T) {
	p := AggressiveWire(3)
	if !p.Enabled() {
		t.Fatal("aggressive wire plan should be enabled")
	}
	if p.Config().StallSec <= 0 {
		t.Fatal("aggressive wire plan should set a stall duration")
	}
}
