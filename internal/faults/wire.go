package faults

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Wire faults extend the plan machinery from capture delivery to the
// capwire transport: the same deterministic-seed philosophy, applied to
// a net.Conn. A WirePlan wraps the agent side of a connection and mangles
// outgoing messages — tearing the connection, truncating or bit-flipping
// a message, stalling mid-message like a slow-loris client, duplicating
// a message, or holding one back so it arrives after its successor.
//
// The wrapper relies on the capwire convention that every Write carries
// exactly one complete wire message, so each fault maps one-to-one onto
// a protocol-visible event: a corrupted Write is one CRC failure, a
// duplicated Write is one dedup hit, a torn Write is one reconnect.
// Every injection is counted; the chaos invariant downstream is that the
// server's quarantine/dedup/resume accounting absorbs all of them with
// no frame lost or double-ingested.

// WireConfig specifies a transport fault plan. All probabilities are
// per written message.
type WireConfig struct {
	// Seed seeds the plan's RNG; identical seeds replay identical faults.
	Seed int64
	// TearProb closes the connection instead of writing — a torn TCP
	// session mid-stream.
	TearProb float64
	// TruncateProb writes only a prefix of the message and then closes —
	// a crash mid-send.
	TruncateProb float64
	// CorruptProb flips 1–3 bits of the message before writing it; the
	// CRC-32 trailer downstream rejects it.
	CorruptProb float64
	// DupProb writes the message twice — at-least-once delivery made
	// literal.
	DupProb float64
	// ReorderProb holds the message back and emits it after the next one.
	ReorderProb float64
	// StallProb writes half the message, sleeps StallSec, then writes the
	// rest — the slow-loris agent that keeps a server reader pinned.
	StallProb float64
	// StallSec is the mid-message stall duration; 0 means 1s.
	StallSec float64
}

// WireCounters totals the transport faults a plan has injected so far.
type WireCounters struct {
	// Torn counts connections closed mid-stream.
	Torn uint64 `json:"torn"`
	// Truncated counts messages cut short (connection closed mid-message).
	Truncated uint64 `json:"truncated"`
	// Corrupted counts messages delivered with flipped bits.
	Corrupted uint64 `json:"corrupted"`
	// Duplicated counts messages written twice.
	Duplicated uint64 `json:"duplicated"`
	// Reordered counts messages delivered after their successor.
	Reordered uint64 `json:"reordered"`
	// Stalled counts messages written with a mid-message stall.
	Stalled uint64 `json:"stalled"`
}

// WirePlan is an armed transport fault plan. Safe for concurrent use;
// one plan may wrap many connections and they share its RNG and budget.
type WirePlan struct {
	cfg WireConfig

	mu  sync.Mutex
	rng *rand.Rand

	torn       atomic.Uint64
	truncated  atomic.Uint64
	corrupted  atomic.Uint64
	duplicated atomic.Uint64
	reordered  atomic.Uint64
	stalled    atomic.Uint64
}

// NewWire validates a config and arms the plan.
func NewWire(cfg WireConfig) (*WirePlan, error) {
	for name, p := range map[string]float64{
		"TearProb": cfg.TearProb, "TruncateProb": cfg.TruncateProb,
		"CorruptProb": cfg.CorruptProb, "DupProb": cfg.DupProb,
		"ReorderProb": cfg.ReorderProb, "StallProb": cfg.StallProb,
	} {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("faults: wire %s = %v, want [0, 1]", name, p)
		}
	}
	if sum := cfg.TearProb + cfg.TruncateProb + cfg.CorruptProb + cfg.DupProb + cfg.ReorderProb + cfg.StallProb; sum > 1 {
		return nil, fmt.Errorf("faults: wire probabilities sum to %v, want <= 1", sum)
	}
	if cfg.StallSec < 0 {
		return nil, fmt.Errorf("faults: wire StallSec = %v, want >= 0", cfg.StallSec)
	}
	return &WirePlan{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// AggressiveWire is the transport chaos preset: every wire fault class on
// at once, hard enough that a transport without CRC + resume visibly
// loses or double-counts batches. Stalls are kept shorter than the
// capwire server's default read deadline so they delay rather than kill
// healthy smoke runs; tighten the server deadline to turn them lethal.
func AggressiveWire(seed int64) *WirePlan {
	p, err := NewWire(WireConfig{
		Seed:         seed,
		TearProb:     0.02,
		TruncateProb: 0.02,
		CorruptProb:  0.04,
		DupProb:      0.06,
		ReorderProb:  0.08,
		StallProb:    0.02,
		StallSec:     0.2,
	})
	if err != nil {
		panic(err) // the preset is a constant; a failure here is a bug
	}
	return p
}

// Enabled reports whether the plan injects anything; a nil plan doesn't.
func (p *WirePlan) Enabled() bool { return p != nil }

// Config returns the plan's configuration (zero for a nil plan).
func (p *WirePlan) Config() WireConfig {
	if p == nil {
		return WireConfig{}
	}
	return p.cfg
}

// Counters returns the plan's injection totals so far (zero for nil).
func (p *WirePlan) Counters() WireCounters {
	if p == nil {
		return WireCounters{}
	}
	return WireCounters{
		Torn:       p.torn.Load(),
		Truncated:  p.truncated.Load(),
		Corrupted:  p.corrupted.Load(),
		Duplicated: p.duplicated.Load(),
		Reordered:  p.reordered.Load(),
		Stalled:    p.stalled.Load(),
	}
}

// corruptBytes flips 1–3 random bits of raw in place — the same
// corruption model Plan.CorruptBytes applies to encoded frames, drawn
// from the wire plan's own RNG.
func (p *WirePlan) corruptBytes(raw []byte) {
	if len(raw) == 0 {
		return
	}
	p.mu.Lock()
	flips := 1 + p.rng.Intn(3)
	for i := 0; i < flips; i++ {
		bit := p.rng.Intn(len(raw) * 8)
		raw[bit/8] ^= 1 << (bit % 8)
	}
	p.mu.Unlock()
}

// wireOutcome is a per-message transport decision.
type wireOutcome int

const (
	wirePass wireOutcome = iota
	wireTear
	wireTruncate
	wireCorrupt
	wireDup
	wireReorder
	wireStall
)

// outcome draws the fate of one written message.
func (p *WirePlan) outcome() wireOutcome {
	p.mu.Lock()
	u := p.rng.Float64()
	p.mu.Unlock()
	c := p.cfg
	switch {
	case u < c.TearProb:
		return wireTear
	case u < c.TearProb+c.TruncateProb:
		return wireTruncate
	case u < c.TearProb+c.TruncateProb+c.CorruptProb:
		return wireCorrupt
	case u < c.TearProb+c.TruncateProb+c.CorruptProb+c.DupProb:
		return wireDup
	case u < c.TearProb+c.TruncateProb+c.CorruptProb+c.DupProb+c.ReorderProb:
		return wireReorder
	case u < c.TearProb+c.TruncateProb+c.CorruptProb+c.DupProb+c.ReorderProb+c.StallProb:
		return wireStall
	}
	return wirePass
}

// WrapConn wraps the write side of conn with the plan's faults. A nil
// plan returns conn unchanged. The wrapper assumes one complete wire
// message per Write call (the capwire client convention).
func (p *WirePlan) WrapConn(conn net.Conn) net.Conn {
	if p == nil {
		return conn
	}
	return &wireConn{Conn: conn, plan: p}
}

// wireConn applies per-message faults on Write. Reads pass through.
type wireConn struct {
	net.Conn
	plan *WirePlan

	mu   sync.Mutex
	held []byte // one reordered message awaiting its successor
}

// Write mangles one outgoing message per the plan. Faults that keep the
// connection alive report len(b) written so the sender believes the send
// succeeded — exactly the silent failure modes the protocol must absorb.
func (c *wireConn) Write(b []byte) (int, error) {
	p := c.plan
	switch p.outcome() {
	case wireTear:
		p.torn.Add(1)
		mInjected("wire_tear").Inc()
		c.Conn.Close()
		return 0, fmt.Errorf("faults: connection torn by wire plan: %w", net.ErrClosed)
	case wireTruncate:
		p.truncated.Add(1)
		mInjected("wire_truncate").Inc()
		n := len(b) / 2
		if n < 1 {
			n = 1
		}
		c.Conn.Write(b[:n])
		c.Conn.Close()
		return n, fmt.Errorf("faults: message truncated by wire plan: %w", net.ErrClosed)
	case wireCorrupt:
		p.corrupted.Add(1)
		mInjected("wire_corrupt").Inc()
		mangled := append([]byte(nil), b...)
		p.corruptBytes(mangled)
		if _, err := c.writeHeldThen(mangled); err != nil {
			return 0, err
		}
		return len(b), nil
	case wireDup:
		p.duplicated.Add(1)
		mInjected("wire_duplicate").Inc()
		if _, err := c.writeHeldThen(b); err != nil {
			return 0, err
		}
		if _, err := c.Conn.Write(b); err != nil {
			return 0, err
		}
		return len(b), nil
	case wireReorder:
		p.reordered.Add(1)
		mInjected("wire_reorder").Inc()
		c.mu.Lock()
		flush := c.held
		c.held = append([]byte(nil), b...)
		c.mu.Unlock()
		if flush != nil {
			if _, err := c.Conn.Write(flush); err != nil {
				return 0, err
			}
		}
		// The held message rides out with the next Write; if the
		// connection dies first it is simply lost — the resume path's
		// problem, by design.
		return len(b), nil
	case wireStall:
		p.stalled.Add(1)
		mInjected("wire_stall").Inc()
		stall := p.cfg.StallSec
		if stall == 0 {
			stall = 1
		}
		half := len(b) / 2
		if _, err := c.writeHeldThen(b[:half]); err != nil {
			return 0, err
		}
		time.Sleep(time.Duration(stall * float64(time.Second)))
		if _, err := c.Conn.Write(b[half:]); err != nil {
			return 0, err
		}
		return len(b), nil
	}
	return c.writeHeldThen(b)
}

// writeHeldThen flushes a reorder-held message (if any) and then writes
// b, reporting b's byte count.
func (c *wireConn) writeHeldThen(b []byte) (int, error) {
	c.mu.Lock()
	flush := c.held
	c.held = nil
	c.mu.Unlock()
	if flush != nil {
		if _, err := c.Conn.Write(flush); err != nil {
			return 0, err
		}
	}
	return c.Conn.Write(b)
}
