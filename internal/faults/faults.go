// Package faults is the pipeline's deterministic fault-injection plan:
// a seedable schedule of the failures a real deployment of the digital
// Marauder's map reports — monitoring cards that die, flap or lose
// sensitivity mid-run, capture clocks that skew and jitter, frames that
// arrive bit-flipped, and capture batches that are dropped, duplicated,
// reordered or delayed on their way to the engine.
//
// A Plan is consulted from two places. The sniffer asks it about card
// health per decode attempt (CardAlive / CardPenaltyDB — a pure function
// of (channel, time), so two runs with the same plan lose exactly the
// same frames). The capture→engine delivery path asks it for per-frame
// and per-batch outcomes (FrameOutcome, ShuffleBatch, DelayBatch,
// PerturbTime), which draw from a single seeded RNG so an entire chaos
// run replays byte-identically from its seed.
//
// Every injected fault is counted — the chaos test's no-silent-loss
// invariant is that the pipeline's quarantine and drop counters add up
// exactly to the plan's injection counters. A nil *Plan is a valid
// "no faults" plan: every method degrades to a pass-through.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Injection metrics, labeled by fault kind, so a chaos run's injected
// load shows up next to the pipeline's survival counters.
func mInjected(kind string) *telemetry.Counter {
	return telemetry.Default().Counter(
		"marauder_faults_injected_total",
		"Faults injected into the capture pipeline, by kind.",
		telemetry.Labels{"kind": kind})
}

// CardMode is a monitoring-card failure mode.
type CardMode int

// Card failure modes.
const (
	// CardDead takes the card offline for the fault's active window.
	CardDead CardMode = iota + 1
	// CardFlapping cycles the card down/up with PeriodSec period; it is
	// down for the first DownFraction of each period.
	CardFlapping
	// CardDegraded keeps the card decoding but subtracts PenaltyDB from
	// every frame's SNR (a failing LNA, a loose pigtail).
	CardDegraded
)

// String names the mode for logs and health reports.
func (m CardMode) String() string {
	switch m {
	case CardDead:
		return "dead"
	case CardFlapping:
		return "flapping"
	case CardDegraded:
		return "degraded"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// CardFault schedules one card failure.
type CardFault struct {
	// Channel is the monitoring card's channel (the plan's card identity).
	Channel int
	// Mode is the failure mode.
	Mode CardMode
	// FromSec / ToSec bound the fault's active window in trace seconds;
	// ToSec <= 0 means the fault never ends.
	FromSec, ToSec float64
	// PeriodSec is the flapping cycle length (CardFlapping only).
	PeriodSec float64
	// DownFraction is the fraction of each flapping period spent down;
	// 0 means the default 0.5.
	DownFraction float64
	// PenaltyDB is the SNR loss while degraded (CardDegraded only).
	PenaltyDB float64
}

// activeAt reports whether the fault window covers t.
func (c CardFault) activeAt(t float64) bool {
	return t >= c.FromSec && (c.ToSec <= 0 || t < c.ToSec)
}

// Config specifies a fault plan.
type Config struct {
	// Seed seeds the plan's RNG; identical seeds replay identical faults.
	Seed int64
	// Cards schedules monitoring-card failures.
	Cards []CardFault
	// ClockSkewSec is a constant offset added to every capture timestamp.
	ClockSkewSec float64
	// ClockJitterSec adds uniform ±jitter to every capture timestamp.
	ClockJitterSec float64
	// CorruptProb is the per-frame probability of bit-flip corruption of
	// the encoded frame.
	CorruptProb float64
	// DropProb is the per-frame probability the frame is lost in delivery.
	DropProb float64
	// DupProb is the per-frame probability the frame is delivered twice.
	DupProb float64
	// ReorderProb is the per-batch probability the batch is shuffled.
	ReorderProb float64
	// DelayProb is the per-batch probability the batch is held back and
	// delivered together with the next one.
	DelayProb float64
}

// Counters totals the faults a plan has injected so far.
type Counters struct {
	// Dropped counts frames removed from delivery.
	Dropped uint64 `json:"dropped"`
	// Corrupted counts frames delivered with flipped bits.
	Corrupted uint64 `json:"corrupted"`
	// Duplicated counts frames delivered twice.
	Duplicated uint64 `json:"duplicated"`
	// ReorderedBatches counts shuffled delivery batches.
	ReorderedBatches uint64 `json:"reorderedBatches"`
	// DelayedBatches counts batches held for late delivery.
	DelayedBatches uint64 `json:"delayedBatches"`
	// CardRejects counts frames lost because the only capable card was
	// down or too degraded to decode.
	CardRejects uint64 `json:"cardRejects"`
}

// Plan is an armed fault plan. Safe for concurrent use.
type Plan struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	dropped    atomic.Uint64
	corrupted  atomic.Uint64
	duplicated atomic.Uint64
	reordered  atomic.Uint64
	delayed    atomic.Uint64
	cardReject atomic.Uint64
}

// New validates a config and arms the plan.
func New(cfg Config) (*Plan, error) {
	for name, p := range map[string]float64{
		"CorruptProb": cfg.CorruptProb, "DropProb": cfg.DropProb,
		"DupProb": cfg.DupProb, "ReorderProb": cfg.ReorderProb,
		"DelayProb": cfg.DelayProb,
	} {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("faults: %s = %v, want [0, 1]", name, p)
		}
	}
	if sum := cfg.DropProb + cfg.CorruptProb + cfg.DupProb; sum > 1 {
		return nil, fmt.Errorf("faults: DropProb+CorruptProb+DupProb = %v, want <= 1", sum)
	}
	if cfg.ClockJitterSec < 0 {
		return nil, fmt.Errorf("faults: ClockJitterSec = %v, want >= 0", cfg.ClockJitterSec)
	}
	for i, cf := range cfg.Cards {
		switch cf.Mode {
		case CardDead:
		case CardFlapping:
			if cf.PeriodSec <= 0 {
				return nil, fmt.Errorf("faults: card %d: flapping needs PeriodSec > 0", i)
			}
			if cf.DownFraction < 0 || cf.DownFraction >= 1 {
				return nil, fmt.Errorf("faults: card %d: DownFraction = %v, want [0, 1)", i, cf.DownFraction)
			}
		case CardDegraded:
			if cf.PenaltyDB < 0 {
				return nil, fmt.Errorf("faults: card %d: PenaltyDB = %v, want >= 0", i, cf.PenaltyDB)
			}
		default:
			return nil, fmt.Errorf("faults: card %d: unknown mode %d", i, int(cf.Mode))
		}
	}
	return &Plan{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Aggressive is the chaos preset: every fault class on at once, hard
// enough that an unprotected pipeline visibly loses data. Channel 1 dies
// outright, channel 6 flaps on a one-minute cycle, channel 11 loses
// 12 dB; timestamps skew and jitter; 5% of frames corrupt, 5% drop, 3%
// duplicate; a third of batches arrive shuffled and a fifth arrive late.
func Aggressive(seed int64) *Plan {
	p, err := New(Config{
		Seed: seed,
		Cards: []CardFault{
			{Channel: 1, Mode: CardDead, FromSec: 30},
			{Channel: 6, Mode: CardFlapping, PeriodSec: 60, DownFraction: 0.5},
			{Channel: 11, Mode: CardDegraded, FromSec: 60, PenaltyDB: 12},
		},
		ClockSkewSec:   0.25,
		ClockJitterSec: 0.05,
		CorruptProb:    0.05,
		DropProb:       0.05,
		DupProb:        0.03,
		ReorderProb:    0.3,
		DelayProb:      0.2,
	})
	if err != nil {
		panic(err) // the preset is a constant; a failure here is a bug
	}
	return p
}

// Enabled reports whether the plan injects anything; a nil plan doesn't.
func (p *Plan) Enabled() bool { return p != nil }

// Config returns the plan's configuration (zero for a nil plan).
func (p *Plan) Config() Config {
	if p == nil {
		return Config{}
	}
	return p.cfg
}

// CardAlive reports whether the card on the given channel can decode at
// all at time t. It is a pure function of (channel, t).
func (p *Plan) CardAlive(channel int, t float64) bool {
	if p == nil {
		return true
	}
	for _, cf := range p.cfg.Cards {
		if cf.Channel != channel || !cf.activeAt(t) {
			continue
		}
		switch cf.Mode {
		case CardDead:
			return false
		case CardFlapping:
			down := cf.DownFraction
			if down == 0 {
				down = 0.5
			}
			phase := math.Mod(t-cf.FromSec, cf.PeriodSec)
			if phase < cf.PeriodSec*down {
				return false
			}
		}
	}
	return true
}

// CardPenaltyDB returns the SNR penalty the card on the given channel
// suffers at time t (0 when healthy). Pure function of (channel, t).
func (p *Plan) CardPenaltyDB(channel int, t float64) float64 {
	if p == nil {
		return 0
	}
	var penalty float64
	for _, cf := range p.cfg.Cards {
		if cf.Channel == channel && cf.Mode == CardDegraded && cf.activeAt(t) {
			penalty += cf.PenaltyDB
		}
	}
	return penalty
}

// RecordCardReject counts one frame lost to a down/degraded card — called
// by the sniffer when the only card that could have decoded a frame was
// faulted at the time.
func (p *Plan) RecordCardReject() {
	if p == nil {
		return
	}
	p.cardReject.Add(1)
	mInjected("card_reject").Inc()
}

// Outcome is a per-frame delivery decision.
type Outcome int

// Per-frame outcomes.
const (
	// Pass delivers the frame untouched.
	Pass Outcome = iota
	// Drop loses the frame.
	Drop
	// Corrupt delivers the frame with flipped bits.
	Corrupt
	// Duplicate delivers the frame twice.
	Duplicate
)

// FrameOutcome draws the delivery outcome for one frame.
func (p *Plan) FrameOutcome() Outcome {
	if p == nil {
		return Pass
	}
	p.mu.Lock()
	u := p.rng.Float64()
	p.mu.Unlock()
	switch {
	case u < p.cfg.DropProb:
		p.dropped.Add(1)
		mInjected("drop").Inc()
		return Drop
	case u < p.cfg.DropProb+p.cfg.CorruptProb:
		p.corrupted.Add(1)
		mInjected("corrupt").Inc()
		return Corrupt
	case u < p.cfg.DropProb+p.cfg.CorruptProb+p.cfg.DupProb:
		p.duplicated.Add(1)
		mInjected("duplicate").Inc()
		return Duplicate
	}
	return Pass
}

// CorruptBytes flips 1–3 random bits of raw in place and returns it —
// the encoded-frame corruption model. Any flip breaks the 802.11 FCS, so
// the decoder downstream rejects the frame instead of mis-parsing it.
func (p *Plan) CorruptBytes(raw []byte) []byte {
	if p == nil || len(raw) == 0 {
		return raw
	}
	p.mu.Lock()
	flips := 1 + p.rng.Intn(3)
	for i := 0; i < flips; i++ {
		bit := p.rng.Intn(len(raw) * 8)
		raw[bit/8] ^= 1 << (bit % 8)
	}
	p.mu.Unlock()
	return raw
}

// PerturbTime applies the plan's clock skew and jitter to a capture
// timestamp.
func (p *Plan) PerturbTime(t float64) float64 {
	if p == nil {
		return t
	}
	t += p.cfg.ClockSkewSec
	if p.cfg.ClockJitterSec > 0 {
		p.mu.Lock()
		t += p.cfg.ClockJitterSec * (2*p.rng.Float64() - 1)
		p.mu.Unlock()
	}
	return t
}

// ShuffleBatch decides whether a delivery batch is reordered and, if so,
// returns the permutation to apply.
func (p *Plan) ShuffleBatch(n int) ([]int, bool) {
	if p == nil || n < 2 {
		return nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng.Float64() >= p.cfg.ReorderProb {
		return nil, false
	}
	p.reordered.Add(1)
	mInjected("reorder").Inc()
	return p.rng.Perm(n), true
}

// DelayBatch decides whether a delivery batch is held back and delivered
// with the next one.
func (p *Plan) DelayBatch() bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	delayed := p.rng.Float64() < p.cfg.DelayProb
	p.mu.Unlock()
	if delayed {
		p.delayed.Add(1)
		mInjected("delay").Inc()
	}
	return delayed
}

// Counters returns the plan's injection totals so far (zero for nil).
func (p *Plan) Counters() Counters {
	if p == nil {
		return Counters{}
	}
	return Counters{
		Dropped:          p.dropped.Load(),
		Corrupted:        p.corrupted.Load(),
		Duplicated:       p.duplicated.Load(),
		ReorderedBatches: p.reordered.Load(),
		DelayedBatches:   p.delayed.Load(),
		CardRejects:      p.cardReject.Load(),
	}
}
