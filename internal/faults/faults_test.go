package faults

import (
	"math"
	"testing"

	"repro/internal/dot11"
)

func TestNilPlanPassesThrough(t *testing.T) {
	var p *Plan
	if p.Enabled() {
		t.Error("nil plan should be disabled")
	}
	if !p.CardAlive(6, 100) || p.CardPenaltyDB(6, 100) != 0 {
		t.Error("nil plan should report every card healthy")
	}
	if p.FrameOutcome() != Pass {
		t.Error("nil plan should pass every frame")
	}
	if p.PerturbTime(42) != 42 {
		t.Error("nil plan should not perturb time")
	}
	if _, ok := p.ShuffleBatch(10); ok {
		t.Error("nil plan should not shuffle")
	}
	if p.DelayBatch() {
		t.Error("nil plan should not delay")
	}
	p.RecordCardReject()
	if p.Counters() != (Counters{}) {
		t.Error("nil plan counters should be zero")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{DropProb: -0.1},
		{CorruptProb: 1.5},
		{DupProb: math.NaN()},
		{DropProb: 0.5, CorruptProb: 0.4, DupProb: 0.2}, // sums past 1
		{ClockJitterSec: -1},
		{Cards: []CardFault{{Channel: 6, Mode: CardFlapping}}},                                 // no period
		{Cards: []CardFault{{Channel: 6, Mode: CardFlapping, PeriodSec: 10, DownFraction: 1}}}, // duty out of range
		{Cards: []CardFault{{Channel: 6, Mode: CardDegraded, PenaltyDB: -3}}},
		{Cards: []CardFault{{Channel: 6}}}, // unknown mode
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d: want validation error", i)
		}
	}
	if _, err := New(Config{DropProb: 0.3, CorruptProb: 0.3, DupProb: 0.3}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestCardSchedule(t *testing.T) {
	p, err := New(Config{Cards: []CardFault{
		{Channel: 1, Mode: CardDead, FromSec: 10, ToSec: 20},
		{Channel: 6, Mode: CardFlapping, PeriodSec: 10, DownFraction: 0.5},
		{Channel: 11, Mode: CardDegraded, FromSec: 5, PenaltyDB: 9},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Dead card: down only inside its window.
	if !p.CardAlive(1, 5) || p.CardAlive(1, 15) || !p.CardAlive(1, 25) {
		t.Error("dead-card window wrong")
	}
	// Flapping: down in the first half of each period, up in the second.
	if p.CardAlive(6, 2) || !p.CardAlive(6, 7) || p.CardAlive(6, 12) || !p.CardAlive(6, 17) {
		t.Error("flapping schedule wrong")
	}
	// Degraded: decodes throughout, penalized after FromSec.
	if !p.CardAlive(11, 100) {
		t.Error("degraded card should stay alive")
	}
	if p.CardPenaltyDB(11, 2) != 0 || p.CardPenaltyDB(11, 10) != 9 {
		t.Error("degraded penalty schedule wrong")
	}
	// Unfaulted channels are untouched.
	if !p.CardAlive(3, 15) || p.CardPenaltyDB(3, 15) != 0 {
		t.Error("unfaulted channel affected")
	}
}

func TestDeterministicReplay(t *testing.T) {
	draw := func() ([]Outcome, []float64) {
		p, err := New(Config{Seed: 42, DropProb: 0.2, CorruptProb: 0.2, DupProb: 0.2,
			ClockJitterSec: 0.1, ReorderProb: 0.5, DelayProb: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		outs := make([]Outcome, 200)
		times := make([]float64, 200)
		for i := range outs {
			outs[i] = p.FrameOutcome()
			times[i] = p.PerturbTime(float64(i))
		}
		return outs, times
	}
	o1, t1 := draw()
	o2, t2 := draw()
	for i := range o1 {
		if o1[i] != o2[i] || t1[i] != t2[i] {
			t.Fatalf("draw %d diverged between identically seeded plans", i)
		}
	}
}

func TestOutcomeCountersAccount(t *testing.T) {
	p, err := New(Config{Seed: 7, DropProb: 0.3, CorruptProb: 0.3, DupProb: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	var drop, corrupt, dup, pass uint64
	for i := 0; i < n; i++ {
		switch p.FrameOutcome() {
		case Drop:
			drop++
		case Corrupt:
			corrupt++
		case Duplicate:
			dup++
		default:
			pass++
		}
	}
	c := p.Counters()
	if c.Dropped != drop || c.Corrupted != corrupt || c.Duplicated != dup {
		t.Fatalf("counters %+v disagree with observed %d/%d/%d", c, drop, corrupt, dup)
	}
	if drop == 0 || corrupt == 0 || dup == 0 || pass == 0 {
		t.Fatalf("with 30/30/30 probabilities every outcome should occur: %d/%d/%d/%d",
			drop, corrupt, dup, pass)
	}
}

func TestCorruptBytesBreaksFCS(t *testing.T) {
	p, err := New(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f := &dot11.Frame{
		Type:    dot11.TypeManagement,
		Subtype: dot11.SubtypeProbeRequest,
		Addr1:   dot11.Broadcast,
		Addr2:   dot11.MAC{2, 0xDD, 0, 0, 0, 1},
		Addr3:   dot11.Broadcast,
	}
	for i := 0; i < 50; i++ {
		raw, err := f.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dot11.Decode(p.CorruptBytes(raw)); err == nil {
			t.Fatal("corrupted frame decoded cleanly; bit flips should break the FCS")
		}
	}
}

func TestShuffleBatchPermutation(t *testing.T) {
	p, err := New(Config{Seed: 5, ReorderProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	perm, ok := p.ShuffleBatch(8)
	if !ok || len(perm) != 8 {
		t.Fatalf("ShuffleBatch = %v, %v; want a permutation of 8", perm, ok)
	}
	seen := make([]bool, 8)
	for _, i := range perm {
		if i < 0 || i >= 8 || seen[i] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[i] = true
	}
	// Single-element batches never shuffle.
	if _, ok := p.ShuffleBatch(1); ok {
		t.Error("1-element batch should never shuffle")
	}
	if got := p.Counters().ReorderedBatches; got != 1 {
		t.Errorf("ReorderedBatches = %d, want 1", got)
	}
}

func TestAggressivePresetValid(t *testing.T) {
	p := Aggressive(1)
	if !p.Enabled() {
		t.Fatal("aggressive plan should be enabled")
	}
	if p.CardAlive(1, 100) {
		t.Error("aggressive plan: channel 1 should be dead after 30s")
	}
	if p.CardPenaltyDB(11, 100) <= 0 {
		t.Error("aggressive plan: channel 11 should be degraded after 60s")
	}
}
