package geom

import (
	"math"
	"math/rand"
	"testing"
)

// Metamorphic properties of IntersectionArea: the area must be invariant
// under rigid motions and disc-order permutation, and scale with s² under
// uniform scaling. These hold for any disc set, so they are checked over
// randomized configurations (overlapping, disjoint, contained, chains).

func randomDiscSet(rng *rand.Rand) []Circle {
	k := 2 + rng.Intn(6)
	discs := make([]Circle, k)
	for i := range discs {
		discs[i] = Circle{
			C: Pt(rng.Float64()*20-10, rng.Float64()*20-10),
			R: 0.5 + rng.Float64()*9,
		}
	}
	return discs
}

// relTol is the metamorphic comparison tolerance: transformed inputs take
// different floating-point paths, so exact equality is not expected.
const relTol = 1e-9

func relClose(a, b float64) bool {
	return math.Abs(a-b) <= relTol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

func TestIntersectionAreaTranslationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 200; trial++ {
		discs := randomDiscSet(rng)
		want := IntersectionArea(discs)
		dx, dy := rng.Float64()*2000-1000, rng.Float64()*2000-1000
		moved := make([]Circle, len(discs))
		for i, c := range discs {
			moved[i] = Circle{C: Pt(c.C.X+dx, c.C.Y+dy), R: c.R}
		}
		if got := IntersectionArea(moved); !relClose(got, want) {
			t.Fatalf("trial %d: translated by (%g,%g): area %.17g, want %.17g", trial, dx, dy, got, want)
		}
	}
}

func TestIntersectionAreaRotationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 200; trial++ {
		discs := randomDiscSet(rng)
		want := IntersectionArea(discs)
		th := rng.Float64() * 2 * math.Pi
		sin, cos := math.Sincos(th)
		rot := make([]Circle, len(discs))
		for i, c := range discs {
			rot[i] = Circle{
				C: Pt(c.C.X*cos-c.C.Y*sin, c.C.X*sin+c.C.Y*cos),
				R: c.R,
			}
		}
		if got := IntersectionArea(rot); !relClose(got, want) {
			t.Fatalf("trial %d: rotated by %g: area %.17g, want %.17g", trial, th, got, want)
		}
	}
}

func TestIntersectionAreaScaleQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 200; trial++ {
		discs := randomDiscSet(rng)
		want := IntersectionArea(discs)
		s := 0.1 + rng.Float64()*10
		scaled := make([]Circle, len(discs))
		for i, c := range discs {
			scaled[i] = Circle{C: Pt(c.C.X*s, c.C.Y*s), R: c.R * s}
		}
		if got := IntersectionArea(scaled); !relClose(got, s*s*want) {
			t.Fatalf("trial %d: scaled by %g: area %.17g, want %.17g", trial, s, got, s*s*want)
		}
	}
}

func TestIntersectionAreaPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	for trial := 0; trial < 200; trial++ {
		discs := randomDiscSet(rng)
		want := IntersectionArea(discs)
		perm := make([]Circle, len(discs))
		for i, j := range rng.Perm(len(discs)) {
			perm[i] = discs[j]
		}
		if got := IntersectionArea(perm); !relClose(got, want) {
			t.Fatalf("trial %d: permuted: area %.17g, want %.17g\ndiscs %v", trial, got, want, discs)
		}
	}
}

// The incremental Region inherits the same metamorphic contract through
// the differential oracle; check one transform end-to-end so a regression
// in either path is caught even if the other moves identically.
func TestRegionTranslationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for trial := 0; trial < 50; trial++ {
		discs := randomDiscSet(rng)
		dx, dy := rng.Float64()*200-100, rng.Float64()*200-100
		var r, moved Region
		for i, c := range discs {
			r.Add(uint64(i+1), c)
			moved.Add(uint64(i+1), Circle{C: Pt(c.C.X+dx, c.C.Y+dy), R: c.R})
		}
		if a, b := r.Area(), moved.Area(); !relClose(a, b) {
			t.Fatalf("trial %d: region area %.17g, translated %.17g", trial, a, b)
		}
	}
}

// TestIntersectionAreaLastEventWraparound is a regression test for the
// a2 += 2π adjustment on the last sorted event: the arc from the largest
// event angle wraps around to the smallest one, and dropping the 2π would
// corrupt every region whose boundary crosses the ±π atan2 seam. The
// lens here is centred so that disc A's kept arc spans the seam; the
// expected area is the closed-form lens formula.
func TestIntersectionAreaLastEventWraparound(t *testing.T) {
	a := Circle{C: Pt(0, 0), R: 2}
	b := Circle{C: Pt(-3, 0), R: 2}
	// A's clipped arc is centred on atan2 = π: its two events straddle the
	// seam, so the final wrapped interval carries the region boundary.
	want := a.LensArea(b)
	got := IntersectionArea([]Circle{a, b})
	if math.Abs(got-want) > 1e-12*(1+want) {
		t.Fatalf("seam-crossing lens: IntersectionArea = %.17g, want LensArea = %.17g", got, want)
	}
	// And the mirrored configuration (arc centred on atan2 = 0) agrees.
	b2 := Circle{C: Pt(3, 0), R: 2}
	got2 := IntersectionArea([]Circle{a, b2})
	if math.Abs(got2-got) > 1e-12*(1+got) {
		t.Fatalf("seam symmetry: %.17g (seam) vs %.17g (no seam)", got, got2)
	}
}

// TestInAllOthersProbeTolerance is a regression test for the probe
// tolerance in inAllOthers: arc-midpoint probes sit exactly on a circle
// boundary, so a third disc passing within strict-epsilon of the probe
// must not reject the arc. The configuration puts C's boundary a hair
// outside the A∩B lens — the lens area must be unchanged by C, and a
// strict (tolerance-free) probe would have dropped boundary arcs.
func TestInAllOthersProbeTolerance(t *testing.T) {
	a := Circle{C: Pt(0, 0), R: 1}
	b := Circle{C: Pt(1, 0), R: 1}
	want := IntersectionArea([]Circle{a, b})
	// A's kept arc for the lens is centred on angle 0, so its midpoint
	// probe sits at (1, 0). C is near-internally-tangent to A there: the
	// probe lies 1e-9 outside C, inside the 1e-7·(1+R) probe tolerance. A
	// strict probe would reject A's entire boundary arc and collapse the
	// area; the tolerant probe keeps it, changing the lens only by the
	// grazing sliver.
	c := Circle{C: Pt(-2, 0), R: 3 - 1e-9}
	got := IntersectionArea([]Circle{a, b, c})
	// The tolerant probe leaves an O(√band) ≈ 1e-4 drift from the grazing
	// arcs; a strict probe would drop A's whole kept arc and change the
	// area by O(1). Pin the former regime.
	if math.Abs(got-want) > 1e-3*(1+want) {
		t.Fatalf("near-grazing cover disc changed the lens: %.17g, want %.17g", got, want)
	}
	// The A–C pair sits in the degenerate band (cos half-angle within
	// 1e-7 of −1), so the incremental Region must detect it and fall back
	// to the full algorithm rather than risk an arc-selection flip.
	var r Region
	r.Add(1, a)
	r.Add(2, b)
	r.Add(3, c)
	if !r.Degenerate() {
		t.Fatal("near-tangent grazing pair not routed through the degenerate fallback")
	}
	if rg := r.Area(); rg != got {
		t.Fatalf("Region.Area = %.17g, IntersectionArea = %.17g", rg, got)
	}
}
