package geom

import (
	"math"
	"math/rand"
	"testing"
)

// checkRegion is the differential oracle: after any mutation the
// incremental Region must agree with the from-scratch algorithms on its
// live key-sorted disc set — area within 1e-9 relative, vertex set
// bit-exact.
func checkRegion(t *testing.T, r *Region) {
	t.Helper()
	discs := r.AppendCircles(nil)
	wantArea := IntersectionArea(discs)
	gotArea := r.Area()
	tol := 1e-9 * (1 + math.Abs(wantArea))
	if math.Abs(gotArea-wantArea) > tol {
		t.Fatalf("k=%d: Area()=%.17g, IntersectionArea=%.17g (diff %g, degen=%v)",
			len(discs), gotArea, wantArea, gotArea-wantArea, r.Degenerate())
	}
	wantV := RegionVertices(discs)
	gotV := r.AppendVertices(nil)
	if len(wantV) != len(gotV) {
		t.Fatalf("k=%d: got %d vertices, want %d (degen=%v)\n got %v\nwant %v",
			len(discs), len(gotV), len(wantV), r.Degenerate(), gotV, wantV)
	}
	for i := range wantV {
		if wantV[i] != gotV[i] {
			t.Fatalf("k=%d: vertex %d = %v, want %v (not bit-equal)", len(discs), i, gotV[i], wantV[i])
		}
	}
}

func TestRegionEmptyAndSingle(t *testing.T) {
	var r Region
	checkRegion(t, &r)
	if got := r.Area(); got != 0 {
		t.Fatalf("empty Area = %g", got)
	}
	c := Circle{C: Pt(3, 4), R: 2}
	r.Add(1, c)
	checkRegion(t, &r)
	if got, want := r.Area(), c.Area(); got != want {
		t.Fatalf("single-disc Area = %g, want %g", got, want)
	}
	if !r.Remove(1) {
		t.Fatal("Remove(1) = false")
	}
	if r.Remove(1) {
		t.Fatal("Remove of absent key = true")
	}
	checkRegion(t, &r)
}

func TestRegionAddPanicsOnDuplicateKey(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	var r Region
	r.Add(7, Circle{C: Pt(0, 0), R: 1})
	r.Add(7, Circle{C: Pt(1, 0), R: 1})
}

// TestRegionScenarios drives the oracle through hand-picked disc
// configurations covering every pair relation: lens, chains, containment,
// disjoint pairs, tangency and coincident centres (degenerate fallback).
func TestRegionScenarios(t *testing.T) {
	scenarios := []struct {
		name  string
		discs []Circle
	}{
		{"lens", []Circle{{Pt(0, 0), 2}, {Pt(3, 0), 2}}},
		{"three-cross", []Circle{{Pt(0, 0), 2}, {Pt(2, 0), 2}, {Pt(1, 1.5), 2}}},
		{"contained", []Circle{{Pt(0, 0), 5}, {Pt(0.5, 0), 1}}},
		{"contained-in-all", []Circle{{Pt(0, 0), 5}, {Pt(1, 0), 6}, {Pt(0.2, 0.1), 1}}},
		{"disjoint", []Circle{{Pt(0, 0), 1}, {Pt(10, 0), 1}}},
		{"disjoint-pair-in-chain", []Circle{{Pt(0, 0), 2}, {Pt(3, 0), 2}, {Pt(6, 0), 2}}},
		{"external-tangent", []Circle{{Pt(0, 0), 1}, {Pt(2, 0), 1}}},
		{"internal-tangent", []Circle{{Pt(0, 0), 2}, {Pt(1, 0), 1}}},
		{"coincident-centres", []Circle{{Pt(1, 1), 2}, {Pt(1, 1), 3}}},
		{"coincident-equal", []Circle{{Pt(1, 1), 2}, {Pt(1, 1), 2}}},
		{"near-tangent-degen", []Circle{{Pt(0, 0), 1}, {Pt(1.9999999, 0), 1}}},
		{"line-of-eight", func() []Circle {
			var ds []Circle
			for i := 0; i < 8; i++ {
				ds = append(ds, Circle{C: Pt(float64(i)*30, 0), R: 150})
			}
			return ds
		}()},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			var r Region
			// Build up, checking after every add.
			for i, c := range sc.discs {
				r.Add(uint64(i+1), c)
				checkRegion(t, &r)
			}
			// Tear down in insertion order, checking after every remove.
			for i := range sc.discs {
				if !r.Remove(uint64(i + 1)) {
					t.Fatalf("Remove(%d) = false", i+1)
				}
				checkRegion(t, &r)
			}
		})
	}
}

// TestRegionRemoveRestores checks the undo contract directly: adding a
// disc and removing it restores the exact previous area bits and vertex
// bytes, for a variety of intruder positions.
func TestRegionRemoveRestores(t *testing.T) {
	var r Region
	base := []Circle{{Pt(0, 0), 3}, {Pt(2, 0), 3}, {Pt(1, 2), 3}}
	for i, c := range base {
		r.Add(uint64(i+1), c)
	}
	wantArea := r.Area()
	wantV := r.AppendVertices(nil)
	intruders := []Circle{
		{Pt(1, 1), 2},     // crossing
		{Pt(1, 1), 50},    // contains everything
		{Pt(1, 0.9), 0.1}, // inside everything
		{Pt(40, 0), 1},    // disjoint from everything
		{Pt(0, 0), 3},     // coincident with disc 1 (degenerate-adjacent)
	}
	for _, c := range intruders {
		r.Add(99, c)
		checkRegion(t, &r)
		if !r.Remove(99) {
			t.Fatal("Remove(99) = false")
		}
		if got := r.Area(); got != wantArea {
			t.Fatalf("intruder %v: area %.17g after undo, want %.17g", c, got, wantArea)
		}
		got := r.AppendVertices(nil)
		if len(got) != len(wantV) {
			t.Fatalf("intruder %v: %d vertices after undo, want %d", c, len(got), len(wantV))
		}
		for i := range got {
			if got[i] != wantV[i] {
				t.Fatalf("intruder %v: vertex %d = %v, want %v", c, i, got[i], wantV[i])
			}
		}
	}
}

// TestRegionDegenerateFallback pins the fallback machinery: a coincident
// pair flips the Region into Degenerate mode, answers stay equal to the
// full algorithms throughout, and removing the offender flips it back.
func TestRegionDegenerateFallback(t *testing.T) {
	var r Region
	r.Add(1, Circle{C: Pt(0, 0), R: 2})
	r.Add(2, Circle{C: Pt(1, 0), R: 2})
	if r.Degenerate() {
		t.Fatal("lens flagged degenerate")
	}
	r.Add(3, Circle{C: Pt(0, 0), R: 2}) // coincident with disc 1
	if !r.Degenerate() {
		t.Fatal("coincident circles not flagged degenerate")
	}
	checkRegion(t, &r)
	r.Remove(3)
	if r.Degenerate() {
		t.Fatal("degen flag stuck after offender removed")
	}
	checkRegion(t, &r)
}

// TestRegionRandomChurn is the in-process cousin of FuzzIncrementalRegion:
// a deterministic random add/remove churn with the oracle checked after
// every step, including a Monte-Carlo cross-check at a few waypoints.
func TestRegionRandomChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var r Region
	type live struct {
		key uint64
		c   Circle
	}
	var set []live
	nextKey := uint64(1)
	for step := 0; step < 400; step++ {
		if len(set) > 0 && (rng.Intn(3) == 0 || len(set) >= 12) {
			i := rng.Intn(len(set))
			if !r.Remove(set[i].key) {
				t.Fatalf("step %d: Remove(%d) = false", step, set[i].key)
			}
			set = append(set[:i], set[i+1:]...)
		} else {
			c := Circle{
				C: Pt(float64(rng.Intn(64))/4, float64(rng.Intn(64))/4),
				R: 1 + float64(rng.Intn(64))/8,
			}
			r.Add(nextKey, c)
			set = append(set, live{nextKey, c})
			nextKey++
		}
		checkRegion(t, &r)
		if step%100 == 50 && len(set) >= 2 {
			discs := r.AppendCircles(nil)
			mc := MonteCarloArea(discs, 200000, rng)
			got := r.Area()
			// MC error scales with the bounding-box area.
			minP, maxP, ok := BoundingBox(discs)
			if ok {
				slack := 0.02 * (maxP.X - minP.X) * (maxP.Y - minP.Y)
				if math.Abs(got-mc) > slack+1e-6 {
					t.Fatalf("step %d: Area=%g vs Monte-Carlo=%g (slack %g)", step, got, mc, slack)
				}
			}
		}
	}
	// Drain and confirm the empty region comes back clean.
	for _, l := range set {
		r.Remove(l.key)
	}
	checkRegion(t, &r)
	if r.Len() != 0 || r.Degenerate() {
		t.Fatalf("drained region not empty: len=%d degen=%v", r.Len(), r.Degenerate())
	}
}

// TestRegionSteadyStateAllocs pins the zero-allocation contract on the
// tracked-device steady state: after warmup, a slide step (remove the
// trailing disc, add a leading one, read vertices + area) must not
// allocate.
func TestRegionSteadyStateAllocs(t *testing.T) {
	var r Region
	const k = 8
	disc := func(i int) Circle { return Circle{C: Pt(float64(i)*30, 0), R: 150} }
	for i := 0; i < k; i++ {
		r.Add(uint64(i+1), disc(i))
	}
	vbuf := make([]Point, 0, 64)
	lo, hi := 0, k
	step := func() {
		r.Remove(uint64(lo + 1))
		lo++
		r.Add(uint64(hi+1), disc(hi))
		hi++
		vbuf = r.AppendVertices(vbuf[:0])
		_ = r.Area()
	}
	// Warm up scratch and spare pools.
	for i := 0; i < 4; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Fatalf("steady-state slide allocates %.1f times per step, want 0", avg)
	}
	if len(vbuf) == 0 {
		t.Fatal("slide window produced no vertices")
	}
}
