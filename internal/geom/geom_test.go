package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointOps(t *testing.T) {
	p, q := Pt(1, 2), Pt(4, 6)
	if got := p.Dist(q); !almostEq(got, 5, 1e-12) {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := p.Dist2(q); !almostEq(got, 25, 1e-12) {
		t.Errorf("Dist2 = %v, want 25", got)
	}
	if got := p.Add(q); got != Pt(5, 8) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); got != Pt(3, 4) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := Pt(3, 4).Norm(); !almostEq(got, 5, 1e-12) {
		t.Errorf("Norm = %v", got)
	}
}

func TestCircleIntersect(t *testing.T) {
	tests := []struct {
		name   string
		a, b   Circle
		nWant  int
		onBoth bool
	}{
		{"disjoint", Circle{Pt(0, 0), 1}, Circle{Pt(5, 0), 1}, 0, false},
		{"contained", Circle{Pt(0, 0), 5}, Circle{Pt(0.5, 0), 1}, 0, false},
		{"tangentExt", Circle{Pt(0, 0), 1}, Circle{Pt(2, 0), 1}, 1, true},
		{"tangentInt", Circle{Pt(0, 0), 2}, Circle{Pt(1, 0), 1}, 1, true},
		{"twoPoints", Circle{Pt(0, 0), 1}, Circle{Pt(1, 0), 1}, 2, true},
		{"concentric", Circle{Pt(0, 0), 1}, Circle{Pt(0, 0), 1}, 0, false},
		{"offsetTwo", Circle{Pt(-3, 4), 5}, Circle{Pt(3, -4), 7}, 2, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pts := tt.a.Intersect(tt.b)
			if len(pts) != tt.nWant {
				t.Fatalf("got %d points, want %d (%v)", len(pts), tt.nWant, pts)
			}
			if tt.onBoth {
				for _, p := range pts {
					if !almostEq(tt.a.C.Dist(p), tt.a.R, 1e-6) {
						t.Errorf("point %v not on circle a", p)
					}
					if !almostEq(tt.b.C.Dist(p), tt.b.R, 1e-6) {
						t.Errorf("point %v not on circle b", p)
					}
				}
			}
		})
	}
}

func TestCircleIntersectSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := Circle{Pt(rng.Float64()*10, rng.Float64()*10), rng.Float64()*5 + 0.1}
		b := Circle{Pt(rng.Float64()*10, rng.Float64()*10), rng.Float64()*5 + 0.1}
		pa, pb := a.Intersect(b), b.Intersect(a)
		if len(pa) != len(pb) {
			t.Fatalf("asymmetric intersection count: %d vs %d", len(pa), len(pb))
		}
	}
}

func TestLensArea(t *testing.T) {
	a := Circle{Pt(0, 0), 1}
	tests := []struct {
		name string
		b    Circle
		want float64
	}{
		{"coincident", Circle{Pt(0, 0), 1}, math.Pi},
		{"disjoint", Circle{Pt(3, 0), 1}, 0},
		{"contained", Circle{Pt(0.2, 0), 0.5}, math.Pi * 0.25},
		// Two unit circles at distance 1: lens area = 2π/3 - √3/2.
		{"unitPair", Circle{Pt(1, 0), 1}, 2*math.Pi/3 - math.Sqrt(3)/2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.LensArea(tt.b); !almostEq(got, tt.want, 1e-9) {
				t.Errorf("LensArea = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestLensAreaMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 25; i++ {
		a := Circle{Pt(rng.Float64()*4, rng.Float64()*4), rng.Float64()*3 + 0.5}
		b := Circle{Pt(rng.Float64()*4, rng.Float64()*4), rng.Float64()*3 + 0.5}
		exact := a.LensArea(b)
		mc := MonteCarloArea([]Circle{a, b}, 200000, rng)
		tol := 0.03*exact + 0.05
		if !almostEq(exact, mc, tol) {
			t.Errorf("lens %v vs %v: exact %.4f mc %.4f", a, b, exact, mc)
		}
	}
}

func TestCentroid(t *testing.T) {
	if _, err := Centroid(nil); err == nil {
		t.Error("expected error for empty centroid")
	}
	c, err := Centroid([]Point{Pt(0, 0), Pt(2, 0), Pt(0, 2), Pt(2, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if c != Pt(1, 1) {
		t.Errorf("centroid = %v, want (1,1)", c)
	}
}

func TestRegionVertices(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if v := RegionVertices(nil); v != nil {
			t.Errorf("got %v", v)
		}
	})
	t.Run("single", func(t *testing.T) {
		v := RegionVertices([]Circle{{Pt(3, 4), 2}})
		if len(v) != 1 || v[0] != Pt(3, 4) {
			t.Errorf("single disc should return centre, got %v", v)
		}
	})
	t.Run("pair", func(t *testing.T) {
		v := RegionVertices([]Circle{{Pt(0, 0), 1}, {Pt(1, 0), 1}})
		if len(v) != 2 {
			t.Fatalf("want 2 vertices, got %v", v)
		}
		for _, p := range v {
			if !almostEq(p.X, 0.5, 1e-9) {
				t.Errorf("vertex %v should lie on x=0.5", p)
			}
		}
	})
	t.Run("disjointEmpty", func(t *testing.T) {
		v := RegionVertices([]Circle{{Pt(0, 0), 1}, {Pt(10, 0), 1}})
		if len(v) != 0 {
			t.Errorf("disjoint discs must give empty region, got %v", v)
		}
	})
	t.Run("containedDisc", func(t *testing.T) {
		v := RegionVertices([]Circle{{Pt(0, 0), 10}, {Pt(1, 1), 1}})
		if len(v) != 1 || v[0] != Pt(1, 1) {
			t.Errorf("contained disc should return its centre, got %v", v)
		}
	})
	t.Run("verticesInsideAll", func(t *testing.T) {
		discs := []Circle{{Pt(0, 0), 2}, {Pt(1, 0), 2}, {Pt(0.5, 1), 2}}
		for _, p := range RegionVertices(discs) {
			if !InAllDiscs(p, discs) {
				t.Errorf("vertex %v outside some disc", p)
			}
		}
	})
}

// The true location is always inside the region when all discs genuinely
// cover it — the paper's key guarantee for M-Loc with accurate knowledge.
func TestRegionContainsTruthProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		truth := Pt(rng.Float64()*100, rng.Float64()*100)
		k := rng.Intn(8) + 2
		discs := make([]Circle, 0, k)
		for i := 0; i < k; i++ {
			r := rng.Float64()*80 + 20
			// AP placed within r of the truth, so its disc covers truth.
			ang := rng.Float64() * 2 * math.Pi
			d := rng.Float64() * r
			ap := Pt(truth.X+d*math.Cos(ang), truth.Y+d*math.Sin(ang))
			discs = append(discs, Circle{ap, r})
		}
		if !InAllDiscs(truth, discs) {
			return false
		}
		// Region must be non-empty: it contains the truth.
		verts := RegionVertices(discs)
		return len(verts) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIntersectionAreaSimpleCases(t *testing.T) {
	if got := IntersectionArea(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	one := Circle{Pt(0, 0), 2}
	if got := IntersectionArea([]Circle{one}); !almostEq(got, one.Area(), 1e-9) {
		t.Errorf("single = %v, want %v", got, one.Area())
	}
	pair := []Circle{{Pt(0, 0), 1}, {Pt(1, 0), 1}}
	want := 2*math.Pi/3 - math.Sqrt(3)/2
	if got := IntersectionArea(pair); !almostEq(got, want, 1e-9) {
		t.Errorf("pair = %v, want %v", got, want)
	}
	disjoint := []Circle{{Pt(0, 0), 1}, {Pt(5, 0), 1}, {Pt(0, 5), 1}}
	if got := IntersectionArea(disjoint); got != 0 {
		t.Errorf("disjoint = %v, want 0", got)
	}
}

func TestIntersectionAreaContained(t *testing.T) {
	discs := []Circle{{Pt(0, 0), 10}, {Pt(0.5, 0), 9}, {Pt(1, 1), 1}}
	want := math.Pi
	if got := IntersectionArea(discs); !almostEq(got, want, 1e-9) {
		t.Errorf("contained small disc: got %v, want %v", got, want)
	}
}

func TestIntersectionAreaMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := 0
	for i := 0; i < 120 && cases < 30; i++ {
		k := rng.Intn(5) + 3
		discs := make([]Circle, 0, k)
		for j := 0; j < k; j++ {
			discs = append(discs, Circle{
				C: Pt(rng.Float64()*3, rng.Float64()*3),
				R: rng.Float64()*2 + 1.5,
			})
		}
		exact := IntersectionArea(discs)
		if exact < 0.1 {
			continue // skip tiny/empty regions: relative MC error explodes
		}
		cases++
		mc := MonteCarloArea(discs, 150000, rng)
		if !almostEq(exact, mc, 0.05*exact+0.02) {
			t.Errorf("discs %v: exact %.5f, mc %.5f", discs, exact, mc)
		}
	}
	if cases < 10 {
		t.Fatalf("only %d usable random cases", cases)
	}
}

func TestIntersectionAreaNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(6) + 1
		discs := make([]Circle, 0, k)
		for j := 0; j < k; j++ {
			discs = append(discs, Circle{
				C: Pt(rng.Float64()*10-5, rng.Float64()*10-5),
				R: rng.Float64()*4 + 0.1,
			})
		}
		a := IntersectionArea(discs)
		if a < 0 || math.IsNaN(a) || math.IsInf(a, 0) {
			return false
		}
		// Area can never exceed the smallest disc.
		minA := math.Inf(1)
		for _, d := range discs {
			if da := d.Area(); da < minA {
				minA = da
			}
		}
		return a <= minA+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Adding a disc can only shrink the region — the monotonicity the paper
// relies on ("the intersected area can only shrink instead of grow").
func TestIntersectionAreaMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(4) + 2
		discs := make([]Circle, 0, k+1)
		for j := 0; j < k; j++ {
			discs = append(discs, Circle{
				C: Pt(rng.Float64()*2, rng.Float64()*2),
				R: rng.Float64()*2 + 1,
			})
		}
		before := IntersectionArea(discs)
		extra := Circle{C: Pt(rng.Float64()*2, rng.Float64()*2), R: rng.Float64()*2 + 1}
		after := IntersectionArea(append(discs, extra))
		return after <= before+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBoundingBox(t *testing.T) {
	if _, _, ok := BoundingBox(nil); ok {
		t.Error("empty input should have no box")
	}
	minP, maxP, ok := BoundingBox([]Circle{{Pt(0, 0), 1}, {Pt(1, 0), 1}})
	if !ok {
		t.Fatal("expected box")
	}
	if minP != Pt(0, -1) || maxP != Pt(1, 1) {
		t.Errorf("box = %v..%v", minP, maxP)
	}
	if _, _, ok := BoundingBox([]Circle{{Pt(0, 0), 1}, {Pt(10, 0), 1}}); ok {
		t.Error("disjoint discs should have empty box")
	}
}

func TestRegionCentroidMC(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	discs := []Circle{{Pt(0, 0), 1}, {Pt(1, 0), 1}}
	c, ok := RegionCentroidMC(discs, 100000, rng)
	if !ok {
		t.Fatal("region should be non-empty")
	}
	if !almostEq(c.X, 0.5, 0.01) || !almostEq(c.Y, 0, 0.01) {
		t.Errorf("lens centroid = %v, want (0.5, 0)", c)
	}
	if _, ok := RegionCentroidMC([]Circle{{Pt(0, 0), 1}, {Pt(9, 0), 1}}, 1000, rng); ok {
		t.Error("disjoint region should report !ok")
	}
}

func BenchmarkIntersectionArea(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	discs := make([]Circle, 10)
	for i := range discs {
		discs[i] = Circle{Pt(rng.Float64(), rng.Float64()), 2 + rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectionArea(discs)
	}
}

func BenchmarkRegionVertices(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	discs := make([]Circle, 15)
	for i := range discs {
		discs[i] = Circle{Pt(rng.Float64()*50, rng.Float64()*50), 100 + rng.Float64()*50}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RegionVertices(discs)
	}
}
