package geom

import "math"

// Region maintains the intersection of a dynamic set of closed discs
// incrementally: Add and Remove reclassify only the pairs involving the
// changed disc instead of rebuilding the O(k²) structure from scratch,
// and the steady state allocates nothing (removed circles' neighbor
// records are recycled). It is the engine's per-tracked-device hot path:
// a device's communicable set Γ changes by ±1–2 APs per step, so almost
// all pair state survives between fixes.
//
// Every circle carries a caller-assigned uint64 key that fixes a total
// order (the engine uses big-endian MAC bytes, so ascending key is
// ascending MAC). The canonical order makes Area and AppendVertices
// reproduce the from-scratch IntersectionArea / RegionVertices answers on
// the same key-sorted disc slice: AppendVertices bit-exactly (same
// Intersect numerics in the same enumeration order, same Contains
// predicate), Area to within floating-point noise (identical pair
// classifications, analytic arc sweep instead of midpoint probes).
//
// Boundary-vertex aliveness (vertex ∈ every live disc) is itself
// maintained incrementally with an exclusion-witness scheme: a dead
// vertex records one live circle that excludes it, so Add re-tests only
// currently-alive vertices against the one new disc, and Remove
// re-adjudicates only vertices whose recorded witness is the removed
// disc. Alive vertices are kept in a list sorted by (lower key, higher
// key, vertex index) — exactly RegionVertices' enumeration order — so a
// steady-state AppendVertices is a straight copy.
//
// Degenerate pair configurations — near-coincident centres, near-tangent
// boundaries — are where an analytic sweep and the probe-based full
// algorithm could disagree, so classification detects them (the cosine of
// the half-angle within degenEps of ±1, matching the full algorithm's
// 1e-7 probe tolerance band) and the Region falls back wholesale to the
// full algorithms until the offending disc leaves. The fallback preserves
// the equivalence contract by construction.
//
// The zero value is an empty, ready-to-use Region. A Region is not safe
// for concurrent use.
type Region struct {
	circles []regionCircle // ascending key

	disjoint int // live pairs with empty pairwise intersection
	degen    int // live pairs classified relDegenerate

	// alive holds the current boundary vertices — pair intersection
	// points contained in every live disc — sorted by (k1, k2, idx).
	alive []aliveVertex

	// gen is bumped per arc sweep; circles touched by an alive vertex are
	// stamped with it (see regionCircle.aliveGen).
	gen uint32

	// Scratch, recycled across calls.
	circScratch []Circle
	spare       [][]neighbor  // neighbor slices of removed circles
	spareEvs    [][]clipEvent // clip-event slices of removed circles
}

// Pair relations. A pair is classified once, from the lower-key circle's
// point of view; the higher-key endpoint stores the flipped relation.
const (
	relCross       = uint8(iota) // boundaries cross: arcs clipped
	relDisjoint                  // d >= a.R+b.R: whole region empty
	relInsideOther               // this disc inside the other: other clips nothing off this circle
	relOtherInside               // other disc inside this one: this circle contributes no arcs
	relDegenerate                // too close to a boundary case: full fallback
)

// Vertex aliveness states, stored per vertex slot on the owning (lower
// key) endpoint of a crossing pair.
const (
	vxDead  = uint8(iota) // outside the disc named by the witness key
	vxAlive               // inside every live disc: on the region boundary
)

type regionCircle struct {
	key     uint64
	c       Circle
	inner   int // discs entirely inside this one (each kills this circle's arcs)
	cross   int // crossing neighbors
	nbrs    []neighbor
	contrib float64 // cached Green's-theorem contribution of this circle's arcs
	dirty   bool

	// evs is the sorted clip-event list of this circle's boundary: two
	// events per crossing neighbor, delimiting the arc inside that
	// neighbor's disc, ordered by (angle, delta) with closes before opens.
	// wrap counts the intervals that pass through angle 0 (s >= e); they
	// contribute to the sweep's base coverage depth. The list is
	// materialized lazily (evsOK) on the first sweep that actually needs
	// it — most circles are fully clipped and never pay the per-pair trig
	// — and from then on maintained incrementally: Add inserts the new
	// pair's events, Remove deletes the departing neighbor's by key, so a
	// contributing circle's sweep never sorts and pays trig only for its
	// one changed neighbor per churn step.
	evs   []clipEvent
	wrap  int
	evsOK bool

	// aliveGen marks (against Region.gen) that this circle participates
	// in a currently-alive boundary vertex. A circle with crossing
	// neighbors and no alive vertex contributes no arcs: every
	// positive-length boundary arc of a circle ends in intersection
	// points with other circles, and those endpoints lie in every closed
	// disc, so the witness scheme holds them alive.
	aliveGen uint32

	// Squared-distance bounds for containsFast, precomputed from the
	// radius: d² beyond t2hi is conclusively outside, below t2lo
	// conclusively inside, between them the exact predicate decides.
	t2lo, t2hi float64

	// invR caches 1/R for normalizing stored boundary vertices into
	// clip-event unit directions (0 for a degenerate zero-radius disc,
	// which can never be a crossing pair's endpoint).
	invR float64
}

// neighbor records one circle's relation to one other live circle, sorted
// ascending by key. d2 caches the squared centre distance (keeping the
// record small keeps the sorted-insert memmoves cheap; arc-sweep state
// lives in the circle's clip-event list). For a crossing pair the boundary
// intersection vertices are stored on the lower-key endpoint only
// (vx[:nv]), computed as lowerCircle.Intersect(higherCircle) so the
// coordinates are bit-identical to RegionVertices' canonical i<j
// enumeration; vstat/vwit track each vertex's aliveness and, when dead,
// the key of one live circle witnessing the exclusion.
type neighbor struct {
	key   uint64
	d2    float64
	vwit  [2]uint64
	vx    [2]Point
	rel   uint8
	nv    uint8
	vstat [2]uint8
}

// aliveVertex is one region boundary vertex: intersection point idx
// (0 or 1) of the crossing pair (k1, k2), k1 < k2.
type aliveVertex struct {
	k1, k2 uint64
	idx    uint8
	p      Point
}

// clipEvent is one endpoint of a crossing neighbor's clip interval on a
// circle's boundary, tagged with the neighbor's key so Remove can delete
// the pair without re-deriving it. The endpoint is kept as a unit
// direction (ux, uy) plus its diamond pseudo-angle tau — a monotone,
// division-only stand-in for the polar angle — so building an event
// costs no transcendentals; the sweep orders and gates by tau and pays
// one atan2 per arc that actually survives onto the region boundary.
type clipEvent struct {
	tau    float64 // diamond pseudo-angle of (ux, uy), in [0, 4)
	ux, uy float64 // unit direction of the endpoint from the circle centre
	key    uint64
	delta  int8 // +1 opens the interval, −1 closes it
}

// diamondTau maps a direction to [0, 4), ordered exactly like the polar
// angle on [0, 2π): quadrant index plus a monotone ratio within the
// quadrant. Two divisions, no trig.
func diamondTau(x, y float64) float64 {
	if y >= 0 {
		if x >= 0 {
			return y / (x + y)
		}
		return 1 - x/(y-x)
	}
	if x < 0 {
		return 2 - y/(-x-y)
	}
	return 3 + x/(x-y)
}

// Len returns the number of live discs.
func (r *Region) Len() int { return len(r.circles) }

// Degenerate reports whether the region is in full-recompute fallback
// because some live pair is too close to a boundary configuration.
func (r *Region) Degenerate() bool { return r.degen > 0 }

// Reset removes all discs, keeping allocated storage for reuse.
func (r *Region) Reset() {
	for i := range r.circles {
		r.recycle(&r.circles[i])
	}
	r.circles = r.circles[:0]
	r.alive = r.alive[:0]
	r.disjoint, r.degen = 0, 0
}

// AppendCircles appends the live discs in key order.
func (r *Region) AppendCircles(dst []Circle) []Circle {
	for i := range r.circles {
		dst = append(dst, r.circles[i].c)
	}
	return dst
}

func (r *Region) recycle(rc *regionCircle) {
	if cap(rc.nbrs) > 0 {
		r.spare = append(r.spare, rc.nbrs[:0])
	}
	rc.nbrs = nil
	if cap(rc.evs) > 0 {
		r.spareEvs = append(r.spareEvs, rc.evs[:0])
	}
	rc.evs = nil
}

func (r *Region) newNbrs() []neighbor {
	if n := len(r.spare); n > 0 {
		s := r.spare[n-1]
		r.spare = r.spare[:n-1]
		return s
	}
	return nil
}

func (r *Region) newEvs() []clipEvent {
	if n := len(r.spareEvs); n > 0 {
		s := r.spareEvs[n-1]
		r.spareEvs = r.spareEvs[:n-1]
		return s
	}
	return nil
}

func (r *Region) find(key uint64) int {
	lo, hi := 0, len(r.circles)
	for lo < hi {
		m := (lo + hi) / 2
		if r.circles[m].key < key {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// degenEps bounds |cos half-angle| away from ±1: inside this band the
// clipped arc is so short (or so near the full circle) that the full
// algorithm's 1e-7-tolerance midpoint probes could disagree with an exact
// interval sweep, so such pairs force the fallback path. The band matches
// inAllOthers' probe tolerance: penetration depth of near-tangent circles
// is ~R·(1−|cos|), so 1e-7 in cosine space covers the 1e-7·(1+R) probe
// band.
const degenEps = 1e-7

// classPad widens every classification band of classifyPair by a relative
// margin in squared-distance space. classifyPair works on d² = dx²+dy²
// while the reference comparisons (IntersectionArea's branch chain, the
// old hypot-based classifier) work on d = hypot(dx, dy); the two round
// differently by a few ulps, so each decision threshold is smeared into a
// band classified relDegenerate. Inside the band the Region falls back to
// the full algorithms (correct by construction); conclusively outside it,
// the squared and linear comparisons provably agree, so every non-degen
// classification matches the reference chain exactly. 1e-14 relative is
// ~45 ulps — vastly wider than the ~3-ulp rounding gap, and vastly
// narrower than the Eps / degenEps bands it pads.
const classPad = 1e-14

// classifyPair computes the relation of the pair (a, b), from a's point
// of view; a must be the lower-key circle. Outside the padded degenerate
// bands the decisions are exactly the comparison chain IntersectionArea
// uses per circle pair, so both paths agree on which branch every pair
// takes — but computed hypot-free in squared-distance space. d2 is the
// squared centre distance, cached by the caller for the arc sweep.
func classifyPair(a, b Circle) (rel uint8, d2 float64) {
	dx, dy := a.C.X-b.C.X, a.C.Y-b.C.Y
	d2 = dx*dx + dy*dy
	// The disjoint/containment bands are IntersectionArea's, each widened
	// by Eps: within Eps of exact tangency Circle.Intersect still reports
	// the tangent point, so RegionVertices and the area branches disagree
	// about the pair; route that band through the fallback, which uses
	// both full algorithms verbatim.
	if math.IsInf(d2, 0) || math.IsNaN(d2) {
		return relDegenerate, d2
	}
	sum := a.R + b.R
	if slo := sum * sum * (1 - classPad); d2 >= slo {
		shi := (sum + Eps) * (sum + Eps) * (1 + classPad)
		if d2 <= shi {
			return relDegenerate, d2 // external tangency
		}
		return relDisjoint, d2
	}
	if diff := b.R - a.R; diff >= 0 {
		if hi := diff * diff * (1 + classPad); d2 <= hi {
			if lo := diff - Eps; lo > 0 && d2 < lo*lo*(1-classPad) {
				return relInsideOther, d2
			}
			return relDegenerate, d2 // internal tangency
		}
	} else {
		diff = -diff
		if hi := diff * diff * (1 + classPad); d2 <= hi {
			if lo := diff - Eps; lo > 0 && d2 < lo*lo*(1-classPad) {
				return relOtherInside, d2
			}
			return relDegenerate, d2 // internal tangency
		}
	}
	if d2 < Eps*Eps*(1+classPad) {
		return relDegenerate, d2 // near-coincident centres
	}
	// Crossing — unless either circle's half-angle cosine sits in the
	// razor band where probe-based and analytic arc selection may differ.
	// |cos| ≤ 1−degenEps is tested squared (numerator² against the
	// denominator² scaled by the limit), so no square root is needed;
	// both cosines are checked so the classification is symmetric.
	na := d2 + a.R*a.R - b.R*b.R
	nb := d2 + b.R*b.R - a.R*a.R
	ca := 4 * d2 * a.R * a.R
	cb := 4 * d2 * b.R * b.R
	if ca <= 0 || cb <= 0 {
		return relDegenerate, d2
	}
	const lim = (1 - degenEps) * (1 - degenEps) * (1 - classPad)
	if !(na*na <= ca*lim) || !(nb*nb <= cb*lim) {
		return relDegenerate, d2
	}
	return relCross, d2
}

func flip(rel uint8) uint8 {
	switch rel {
	case relInsideOther:
		return relOtherInside
	case relOtherInside:
		return relInsideOther
	}
	return rel
}

// containsFast is Circle.Contains with the hypot deferred: the
// precomputed squared-distance bounds decide all but a 1e-9-relative
// razor band around the threshold, which falls through to the exact
// predicate. The result is always identical to Contains.
func (rc *regionCircle) containsFast(p Point) bool {
	dx, dy := p.X-rc.c.C.X, p.Y-rc.c.C.Y
	d2 := dx*dx + dy*dy
	if d2 > rc.t2hi {
		return false
	}
	if d2 < rc.t2lo {
		return true
	}
	return rc.containsExact(p)
}

// containsExact is the razor-band fallback, kept out of line so the
// two-comparison fast path above stays within the inlining budget.
//
//go:noinline
func (rc *regionCircle) containsExact(p Point) bool {
	return rc.c.Contains(p)
}

// findExcluder returns the index of a live circle that does not contain
// p, or -1 when p is inside every disc; k1 and k2 are the keys of p's
// two defining circles. Against a non-defining circle the conclusive
// squared-distance bounds almost always decide, but p sits exactly on
// the defining circles' boundaries, where every check pays the exact
// hypot fallback — so the defining circles are tested only when nothing
// else excludes (any excluder is a valid witness, so scan order never
// changes the alive/dead answer). The main scan runs from the highest
// key down: under the engine's sliding-Γ churn high keys are the most
// recently added discs, so witnesses picked here survive the longest
// before a Remove forces re-adjudication. (A middle-out scan — picking
// witnesses that outlive slides in either direction — measured slower:
// the extra index arithmetic outweighed the rarer re-adjudication.)
func (r *Region) findExcluder(p Point, k1, k2 uint64) int {
	i1, i2 := -1, -1
	for i := len(r.circles) - 1; i >= 0; i-- {
		rc := &r.circles[i]
		if rc.key == k1 {
			i1 = i
			continue
		}
		if rc.key == k2 {
			i2 = i
			continue
		}
		// containsFast, spelled out: the function's call overhead is
		// measurable at this innermost loop's call frequency and the
		// compiler cannot inline it past the exact-predicate call.
		dx, dy := p.X-rc.c.C.X, p.Y-rc.c.C.Y
		d2 := dx*dx + dy*dy
		if d2 < rc.t2lo {
			continue
		}
		if d2 > rc.t2hi || !rc.containsExact(p) {
			return i
		}
	}
	if i1 >= 0 && !r.circles[i1].containsFast(p) {
		return i1
	}
	if i2 >= 0 && !r.circles[i2].containsFast(p) {
		return i2
	}
	return -1
}

// setVertexDead marks vertex idx of the crossing pair (k1, k2) dead with
// the given exclusion witness. k1 must be the lower key (the endpoint
// that owns the pair's vertex slots).
func (r *Region) setVertexDead(k1, k2 uint64, idx uint8, wit uint64) {
	rc := &r.circles[r.find(k1)]
	nb := &rc.nbrs[rc.findNbr(k2)]
	nb.vstat[idx] = vxDead
	nb.vwit[idx] = wit
}

// aliveInsert inserts a boundary vertex keeping r.alive sorted by
// (k1, k2, idx) — RegionVertices' enumeration order.
func (r *Region) aliveInsert(k1, k2 uint64, idx uint8, p Point) {
	lo, hi := 0, len(r.alive)
	for lo < hi {
		m := (lo + hi) / 2
		av := &r.alive[m]
		if av.k1 < k1 || (av.k1 == k1 && (av.k2 < k2 || (av.k2 == k2 && av.idx < idx))) {
			lo = m + 1
		} else {
			hi = m
		}
	}
	r.alive = append(r.alive, aliveVertex{})
	copy(r.alive[lo+1:], r.alive[lo:])
	r.alive[lo] = aliveVertex{k1: k1, k2: k2, idx: idx, p: p}
}

// Add inserts disc c under key. Keys must be unique; Add panics on a
// duplicate so engine bugs surface instead of corrupting counters.
func (r *Region) Add(key uint64, c Circle) {
	at := r.find(key)
	if at < len(r.circles) && r.circles[at].key == key {
		panic("geom: Region.Add duplicate key")
	}
	r.circles = append(r.circles, regionCircle{})
	copy(r.circles[at+1:], r.circles[at:])
	nc := &r.circles[at]
	thr := c.R + Eps
	t2 := thr * thr
	*nc = regionCircle{key: key, c: c, nbrs: r.newNbrs(), evs: r.newEvs(),
		dirty: true, t2lo: t2 * (1 - 1e-9), t2hi: t2 * (1 + 1e-9)}
	if c.R > 0 {
		nc.invR = 1 / c.R
	}

	// Existing boundary vertices the new disc excludes die now, with the
	// new disc as witness; survivors stay alive without consulting any
	// other circle (they were already inside everything else).
	w := 0
	for i := range r.alive {
		av := r.alive[i]
		// containsFast, manually inlined (see findExcluder).
		dx, dy := av.p.X-c.C.X, av.p.Y-c.C.Y
		d2 := dx*dx + dy*dy
		if d2 < nc.t2lo || (d2 <= nc.t2hi && nc.containsExact(av.p)) {
			r.alive[w] = av
			w++
			continue
		}
		r.setVertexDead(av.k1, av.k2, av.idx, key)
	}
	r.alive = r.alive[:w]

	for i := range r.circles {
		if i == at {
			continue
		}
		oc := &r.circles[i]

		// Classify once, canonically lower→higher, so the two endpoints'
		// views can never disagree.
		var relL uint8 // relation from the lower-key circle's view
		var d2 float64
		lowerIsOC := oc.key < key
		if lowerIsOC {
			relL, d2 = classifyPair(oc.c, c)
		} else {
			relL, d2 = classifyPair(c, oc.c)
		}
		relOC, relNC := relL, flip(relL)
		if !lowerIsOC {
			relOC, relNC = relNC, relOC
		}

		// The records are filled through their final slots: oc's backing
		// array cannot move when nc's grows, so the first slot stays valid
		// across the second insert.
		ob := oc.insertNbrSlot(key)
		nb := nc.insertNbrSlot(oc.key)
		ob.key, ob.d2, ob.rel = key, d2, relOC
		nb.key, nb.d2, nb.rel = oc.key, d2, relNC
		var p1, p2 Point
		n := 0
		if relL == relCross {
			// Pair vertices live on the lower-key endpoint, computed
			// lower→higher: bit-identical to RegionVertices. Each new
			// vertex is adjudicated against every live disc exactly once,
			// here; afterwards only the witness scheme keeps it current.
			lo := ob
			loKey, hiKey := oc.key, key
			a, b := oc.c, c
			if !lowerIsOC {
				lo = nb
				loKey, hiKey = key, oc.key
				a, b = c, oc.c
			}
			p1, p2, n = a.intersect2(b)
			lo.vx[0], lo.vx[1] = p1, p2
			lo.nv = uint8(n)
			for v := 0; v < n; v++ {
				if ex := r.findExcluder(lo.vx[v], loKey, hiKey); ex >= 0 {
					lo.vstat[v], lo.vwit[v] = vxDead, r.circles[ex].key
				} else {
					lo.vstat[v] = vxAlive
					r.aliveInsert(loKey, hiKey, uint8(v), lo.vx[v])
				}
			}
		}

		switch relL {
		case relDisjoint:
			r.disjoint++
		case relDegenerate:
			r.degen++
		}
		switch relOC {
		case relCross:
			oc.cross++
			nc.cross++
			oc.dirty = true
			// A partner with a materialized event list absorbs the new
			// pair's clip interval in place, straight from the vertices
			// just computed; un-materialized circles (the new one
			// included) defer all interval work to their first
			// contributing sweep, which most never reach.
			if oc.evsOK {
				var sx, sy, ex, ey float64
				if n == 2 {
					sx, sy, ex, ey = oc.clipEndsVx(p1, p2, lowerIsOC)
				} else {
					sx, sy, ex, ey = oc.clipEndsOf(d2, c)
				}
				oc.addClip(key, sx, sy, ex, ey)
			}
		case relOtherInside: // new disc inside oc: oc's arcs die
			oc.inner++
			oc.dirty = true
		case relInsideOther: // oc inside new disc: nc's arcs die
			nc.inner++
		}
	}
}

// Remove deletes the disc stored under key, returning false if absent.
// All state installed by the matching Add is undone symmetrically, so a
// Remove after an Add restores the prior answers exactly.
func (r *Region) Remove(key uint64) bool {
	at := r.find(key)
	if at >= len(r.circles) || r.circles[at].key != key {
		return false
	}
	// Boundary vertices defined by the removed circle vanish with its
	// pair records.
	if len(r.alive) > 0 {
		w := 0
		for i := range r.alive {
			av := r.alive[i]
			if av.k1 == key || av.k2 == key {
				continue
			}
			r.alive[w] = av
			w++
		}
		r.alive = r.alive[:w]
	}
	for i := range r.circles {
		if i == at {
			continue
		}
		oc := &r.circles[i]
		j := oc.findNbr(key)
		switch oc.nbrs[j].rel {
		case relCross:
			oc.cross--
			oc.dirty = true
			if oc.evsOK {
				oc.removeClip(key)
			}
		case relDisjoint:
			r.disjoint--
		case relOtherInside: // removed disc was inside oc: oc's arcs return
			oc.inner--
			oc.dirty = true
		case relDegenerate:
			r.degen--
		}
		oc.removeNbrAt(j)
	}
	r.recycle(&r.circles[at])
	copy(r.circles[at:], r.circles[at+1:])
	r.circles = r.circles[:len(r.circles)-1]

	// Dead vertices whose exclusion witness was the removed circle are
	// re-adjudicated: a replacement witness, or back onto the boundary.
	// All other vertices are untouched — removing a disc can only ever
	// resurrect, and their witnesses are still live and still exclude.
	// Vertices live on the lower-key endpoint, so only the sorted suffix
	// of each circle's records (keys above its own) needs walking.
	for i := range r.circles {
		rc := &r.circles[i]
		for j := rc.findNbr(rc.key); j < len(rc.nbrs); j++ {
			nb := &rc.nbrs[j]
			if nb.rel != relCross {
				continue
			}
			for v := 0; v < int(nb.nv); v++ {
				if nb.vstat[v] != vxDead || nb.vwit[v] != key {
					continue
				}
				if ex := r.findExcluder(nb.vx[v], rc.key, nb.key); ex >= 0 {
					nb.vwit[v] = r.circles[ex].key
				} else {
					nb.vstat[v] = vxAlive
					r.aliveInsert(rc.key, nb.key, uint8(v), nb.vx[v])
				}
			}
		}
	}
	return true
}

func (rc *regionCircle) findNbr(key uint64) int {
	lo, hi := 0, len(rc.nbrs)
	for lo < hi {
		m := (lo + hi) / 2
		if rc.nbrs[m].key < key {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// insertNbrSlot opens a zeroed record under key at its sorted position
// and returns it for the caller to fill in place.
func (rc *regionCircle) insertNbrSlot(key uint64) *neighbor {
	at := rc.findNbr(key)
	rc.nbrs = append(rc.nbrs, neighbor{})
	copy(rc.nbrs[at+1:], rc.nbrs[at:])
	rc.nbrs[at] = neighbor{}
	return &rc.nbrs[at]
}

func (rc *regionCircle) removeNbrAt(at int) {
	copy(rc.nbrs[at:], rc.nbrs[at+1:])
	rc.nbrs = rc.nbrs[:len(rc.nbrs)-1]
}

// addClipOf computes and records the clip interval the crossing circle
// (key, other) at squared distance d2 cuts on this circle's boundary:
// [mid−half, mid+half], where mid is the direction towards the other
// centre and cos(half) comes from the law of cosines. The endpoints are
// built by angle addition on unit vectors — sqrt and arithmetic only, no
// acos/atan2 — which agrees with the trig evaluation to a few ulps; the
// arc angles sit degenEps away from tangency, so the area stays within
// the documented floating-point noise.
func (rc *regionCircle) clipEndsOf(d2 float64, other Circle) (sx, sy, ex, ey float64) {
	d := math.Sqrt(d2)
	cm := (other.C.X - rc.c.C.X) / d
	sm := (other.C.Y - rc.c.C.Y) / d
	ch := clampUnit((d2 + rc.c.R*rc.c.R - other.R*other.R) / (2 * d * rc.c.R))
	sh := math.Sqrt(1 - ch*ch)
	return cm*ch + sm*sh, sm*ch - cm*sh, cm*ch - sm*sh, sm*ch + cm*sh
}

// clipEndsVx derives the same clip endpoints from the pair's stored
// boundary vertices instead of recomputing the geometry: the interval's
// endpoints ARE the two intersection points, so their unit directions
// from this centre (a subtract and a multiply each) replace the sqrt
// and divisions of clipEndsOf. intersect2 orders its results so that,
// seen from the lower-key circle, p1 starts the covered arc going ccw
// (cross(p1−c, other−c) = +h) and p2 ends it; from the higher-key
// circle the roles swap. lower says which endpoint this circle is.
func (rc *regionCircle) clipEndsVx(p1, p2 Point, lower bool) (sx, sy, ex, ey float64) {
	if !lower {
		p1, p2 = p2, p1
	}
	return (p1.X - rc.c.C.X) * rc.invR, (p1.Y - rc.c.C.Y) * rc.invR,
		(p2.X - rc.c.C.X) * rc.invR, (p2.Y - rc.c.C.Y) * rc.invR
}

// addClip records the clip interval from direction (sx, sy) ccw to
// (ex, ey), inserting its two events at their sorted positions. The
// order is (tau, delta) ascending, so a closing event (−1) sorts before
// an opening event (+1) at the same angle and a zero-length gap between
// a close and an open never reads as covered.
func (rc *regionCircle) addClip(key uint64, sx, sy, ex, ey float64) {
	ts, te := diamondTau(sx, sy), diamondTau(ex, ey)
	rc.insertClip(clipEvent{tau: ts, ux: sx, uy: sy, key: key, delta: 1})
	rc.insertClip(clipEvent{tau: te, ux: ex, uy: ey, key: key, delta: -1})
	if ts >= te {
		rc.wrap++ // interval wraps through angle 0
	}
}

// appendClip is addClip without the sorted insert, for bulk
// materialization: the caller appends every interval first and restores
// the order with one sortClip pass, instead of paying a search and a
// shift per event.
func (rc *regionCircle) appendClip(key uint64, sx, sy, ex, ey float64) {
	ts, te := diamondTau(sx, sy), diamondTau(ex, ey)
	rc.evs = append(rc.evs,
		clipEvent{tau: ts, ux: sx, uy: sy, key: key, delta: 1},
		clipEvent{tau: te, ux: ex, uy: ey, key: key, delta: -1})
	if ts >= te {
		rc.wrap++
	}
}

// sortClip restores the (tau, delta)-ascending event order after bulk
// appends. Insertion sort: the lists are small (two events per crossing
// neighbor) and the per-element cost beats a library sort's indirection.
func (rc *regionCircle) sortClip() {
	evs := rc.evs
	for i := 1; i < len(evs); i++ {
		ev := evs[i]
		j := i - 1
		for j >= 0 && (evs[j].tau > ev.tau || (evs[j].tau == ev.tau && evs[j].delta > ev.delta)) {
			evs[j+1] = evs[j]
			j--
		}
		evs[j+1] = ev
	}
}

func (rc *regionCircle) insertClip(ev clipEvent) {
	lo, hi := 0, len(rc.evs)
	for lo < hi {
		m := (lo + hi) / 2
		if rc.evs[m].tau < ev.tau || (rc.evs[m].tau == ev.tau && rc.evs[m].delta < ev.delta) {
			lo = m + 1
		} else {
			hi = m
		}
	}
	rc.evs = append(rc.evs, clipEvent{})
	copy(rc.evs[lo+1:], rc.evs[lo:])
	rc.evs[lo] = ev
}

// removeClip deletes the departing crossing neighbor's two events,
// un-counting its wrap exactly as addClip counted it.
func (rc *regionCircle) removeClip(key uint64) {
	var ts, te float64
	w := 0
	for i := range rc.evs {
		ev := rc.evs[i]
		if ev.key == key {
			if ev.delta > 0 {
				ts = ev.tau
			} else {
				te = ev.tau
			}
			continue
		}
		rc.evs[w] = ev
		w++
	}
	rc.evs = rc.evs[:w]
	if ts >= te {
		rc.wrap--
	}
}

// Area returns the intersection area of the live discs. In the
// non-degenerate steady state this resweeps only circles whose clip
// state changed since the last call; under fallback it defers to the full
// IntersectionArea on the key-sorted disc slice.
func (r *Region) Area() float64 {
	switch len(r.circles) {
	case 0:
		return 0
	case 1:
		return r.circles[0].c.Area()
	}
	if r.disjoint > 0 {
		return 0
	}
	if r.degen > 0 {
		r.circScratch = r.AppendCircles(r.circScratch[:0])
		return IntersectionArea(r.circScratch)
	}
	// Stamp the circles that own an alive boundary vertex; resweep zeroes
	// every crossing circle without one (its arcs are fully clipped — see
	// regionCircle.aliveGen) before touching any interval trig.
	r.gen++
	for i := range r.alive {
		av := &r.alive[i]
		r.circles[r.find(av.k1)].aliveGen = r.gen
		r.circles[r.find(av.k2)].aliveGen = r.gen
	}
	total := 0.0
	for i := range r.circles {
		rc := &r.circles[i]
		if rc.dirty {
			rc.contrib = r.resweep(rc)
			rc.dirty = false
		}
		total += rc.contrib
	}
	if total < 0 {
		total = 0
	}
	return total
}

// resweep recomputes circle rc's Green's-theorem contribution: the ccw
// arcs of rc covered by all of its crossing neighbors' clip intervals.
// Each crossing neighbor covers [mid−half, mid+half] of rc's boundary
// (the part inside the neighbor's disc); intervals are normalized to
// [0, 2π) with a wrapping interval contributing to the base depth. With
// no disjoint or degenerate pairs live, an arc lies on the region
// boundary iff its coverage depth equals the crossing-neighbor count:
// discs containing rc never clip it, and a disc inside rc means rc's
// boundary is outside the region everywhere (inner > 0, no arcs).
//
// The event list and wrap count are maintained invariants of the circle
// (see regionCircle.evs), so the sweep is a single pass — no per-call
// assembly, trig, or sort.
func (r *Region) resweep(rc *regionCircle) float64 {
	if rc.inner > 0 {
		return 0
	}
	if rc.cross == 0 {
		// No clipping events: every other disc contains rc, so the whole
		// circle bounds the region.
		return arcGreen(rc.c, 0, 2*math.Pi)
	}
	if rc.aliveGen != r.gen {
		// No alive vertex on this circle: its boundary is nowhere inside
		// all discs, so it contributes no arcs. De-materialize the event
		// list too — a non-contributing circle pays no incremental clip
		// upkeep in Add/Remove, and rebuilding the list costs one pass
		// over the pair records if it ever contributes again.
		if rc.evsOK {
			rc.evsOK = false
			rc.evs = rc.evs[:0]
			rc.wrap = 0
		}
		return 0
	}
	if !rc.evsOK {
		rc.evs = rc.evs[:0]
		rc.wrap = 0
		for i := range rc.nbrs {
			nb := &rc.nbrs[i]
			if nb.rel != relCross {
				continue
			}
			// The pair's stored vertices are the interval endpoints;
			// they live on the lower-key endpoint's record — this
			// circle's own when the neighbor key is higher, otherwise
			// the neighbor's record of this circle.
			if nb.key > rc.key {
				if nb.nv == 2 {
					sx, sy, ex, ey := rc.clipEndsVx(nb.vx[0], nb.vx[1], true)
					rc.appendClip(nb.key, sx, sy, ex, ey)
					continue
				}
			} else {
				oc := &r.circles[r.find(nb.key)]
				if onb := &oc.nbrs[oc.findNbr(rc.key)]; onb.nv == 2 {
					sx, sy, ex, ey := rc.clipEndsVx(onb.vx[0], onb.vx[1], false)
					rc.appendClip(nb.key, sx, sy, ex, ey)
					continue
				}
			}
			sx, sy, ex, ey := rc.clipEndsOf(nb.d2, r.circles[r.find(nb.key)].c)
			rc.appendClip(nb.key, sx, sy, ex, ey)
		}
		rc.sortClip()
		rc.evsOK = true
	}
	total := 0.0
	depth := rc.wrap
	need := rc.cross
	prevTau := 0.0
	prevX, prevY := 1.0, 0.0 // sweep anchor: angle 0
	for i := range rc.evs {
		ev := &rc.evs[i]
		if depth == need && ev.tau > prevTau {
			total += arcGreenU(rc.c, prevX, prevY, ev.ux, ev.uy)
		}
		depth += int(ev.delta)
		prevTau, prevX, prevY = ev.tau, ev.ux, ev.uy
	}
	if depth == need && prevTau < 4 {
		total += arcGreenU(rc.c, prevX, prevY, 1, 0) // close back through 2π
	}
	return total
}

// arcGreenU is arcGreen on unit-vector endpoints: the ccw arc from
// direction (x1, y1) to (x2, y2). The endpoint sines/cosines are the
// vector components themselves; only the swept angle needs an atan2,
// normalized to (0, 2π] so an arc ending where it starts reads as the
// full turn (the caller gates out genuinely empty arcs by tau).
func arcGreenU(c Circle, x1, y1, x2, y2 float64) float64 {
	dt := math.Atan2(x1*y2-y1*x2, x1*x2+y1*y2)
	if dt <= 0 {
		dt += 2 * math.Pi
	}
	return 0.5 * (c.R*c.R*dt +
		c.C.X*c.R*(y2-y1) -
		c.C.Y*c.R*(x2-x1))
}

// AppendVertices appends the region's vertex set in the same order and
// with the same coordinates RegionVertices produces on the key-sorted
// disc slice: bit-exact in the non-degenerate case, identical by
// construction under fallback. An unchanged dst means an empty region.
func (r *Region) AppendVertices(dst []Point) []Point {
	switch len(r.circles) {
	case 0:
		return dst
	case 1:
		return append(dst, r.circles[0].c.C)
	}
	if r.degen > 0 {
		r.circScratch = r.AppendCircles(r.circScratch[:0])
		return AppendRegionVertices(dst, r.circScratch)
	}
	// The alive list is maintained sorted by (lower key, higher key,
	// vertex index); with the circles sorted by key that is exactly
	// RegionVertices' pair enumeration order (i, j) with i < j.
	if len(r.alive) > 0 {
		for i := range r.alive {
			dst = append(dst, r.alive[i].p)
		}
		return dst
	}
	// No boundary vertices inside all discs: either empty, or the
	// smallest disc is contained in all others.
	smallest := 0
	for i := range r.circles {
		if r.circles[i].c.R < r.circles[smallest].c.R {
			smallest = i
		}
	}
	if p := r.circles[smallest].c.C; r.inAllLive(p) {
		return append(dst, p)
	}
	return dst
}

func (r *Region) inAllLive(p Point) bool {
	for i := range r.circles {
		if !r.circles[i].containsFast(p) {
			return false
		}
	}
	return true
}
