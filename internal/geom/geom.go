// Package geom implements the planar geometry the Marauder's map
// localization algorithms are built on: circles, disc intersections,
// intersection-region vertex enumeration, and area computation.
//
// All coordinates are in a local Cartesian plane (metres). Conversion from
// geodetic coordinates lives in package geo.
package geom

import (
	"errors"
	"fmt"
	"math"
)

// Eps is the tolerance used for geometric predicates. Distances below Eps
// metres are considered zero.
const Eps = 1e-9

// Point is a location in the local 2D plane, in metres.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{X: p.X + q.X, Y: p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{X: p.X - q.X, Y: p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{X: p.X * s, Y: p.Y * s} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y) }

// Circle is a circle (and, where context requires, the closed disc it
// bounds) with centre C and radius R, in metres.
type Circle struct {
	C Point   `json:"center"`
	R float64 `json:"radius"`
}

// ErrNoIntersection is returned by operations that require a non-empty
// intersection region when the region is empty.
var ErrNoIntersection = errors.New("geom: empty intersection region")

// Contains reports whether p lies inside the closed disc (within Eps).
func (c Circle) Contains(p Point) bool {
	return c.C.Dist(p) <= c.R+Eps
}

// Area returns the disc area πR².
func (c Circle) Area() float64 { return math.Pi * c.R * c.R }

// Intersect returns the intersection points of the two circle boundaries.
// The result has zero points when the circles are disjoint or one strictly
// contains the other, one point when they are tangent, and two otherwise.
// Coincident circles yield zero points.
func (c Circle) Intersect(o Circle) []Point {
	p1, p2, n := c.intersect2(o)
	switch n {
	case 1:
		return []Point{p1}
	case 2:
		return []Point{p1, p2}
	}
	return nil
}

// intersect2 is the allocation-free core of Intersect: it reports the
// boundary intersection points in p1 (and p2 when n == 2). The numerics are
// bit-identical to the original Intersect.
func (c Circle) intersect2(o Circle) (p1, p2 Point, n int) {
	d := c.C.Dist(o.C)
	switch {
	case d < Eps:
		// Concentric (possibly coincident): boundaries share either no
		// points or infinitely many; report none.
		return Point{}, Point{}, 0
	case d > c.R+o.R+Eps:
		return Point{}, Point{}, 0 // disjoint
	case d < math.Abs(c.R-o.R)-Eps:
		return Point{}, Point{}, 0 // one strictly inside the other
	}
	// a is the distance from c.C to the chord's foot along the centre line.
	a := (d*d + c.R*c.R - o.R*o.R) / (2 * d)
	h2 := c.R*c.R - a*a
	if h2 < 0 {
		h2 = 0
	}
	h := math.Sqrt(h2)
	ux := (o.C.X - c.C.X) / d
	uy := (o.C.Y - c.C.Y) / d
	foot := Point{X: c.C.X + a*ux, Y: c.C.Y + a*uy}
	if h < Eps {
		return foot, Point{}, 1 // tangent
	}
	return Point{X: foot.X + h*uy, Y: foot.Y - h*ux},
		Point{X: foot.X - h*uy, Y: foot.Y + h*ux}, 2
}

// LensArea returns the area of the intersection of the two closed discs
// (the classic "lens" formula). It is 0 for disjoint discs and the area of
// the smaller disc when one contains the other.
func (c Circle) LensArea(o Circle) float64 {
	d := c.C.Dist(o.C)
	if d >= c.R+o.R {
		return 0
	}
	rMin := math.Min(c.R, o.R)
	if d <= math.Abs(c.R-o.R) {
		return math.Pi * rMin * rMin
	}
	r1, r2 := c.R, o.R
	// Clamp acos arguments against floating-point drift.
	a1 := clampUnit((d*d + r1*r1 - r2*r2) / (2 * d * r1))
	a2 := clampUnit((d*d + r2*r2 - r1*r1) / (2 * d * r2))
	term := (-d + r1 + r2) * (d + r1 - r2) * (d - r1 + r2) * (d + r1 + r2)
	if term < 0 {
		term = 0
	}
	return r1*r1*math.Acos(a1) + r2*r2*math.Acos(a2) - 0.5*math.Sqrt(term)
}

func clampUnit(x float64) float64 {
	if x > 1 {
		return 1
	}
	if x < -1 {
		return -1
	}
	return x
}

// Centroid returns the arithmetic mean of the points. It returns an error
// for an empty input.
func Centroid(pts []Point) (Point, error) {
	if len(pts) == 0 {
		return Point{}, errors.New("geom: centroid of empty point set")
	}
	var sx, sy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	n := float64(len(pts))
	return Point{X: sx / n, Y: sy / n}, nil
}

// InAllDiscs reports whether p lies inside every closed disc in discs.
func InAllDiscs(p Point, discs []Circle) bool {
	for _, d := range discs {
		if !d.Contains(p) {
			return false
		}
	}
	return true
}

// RegionVertices enumerates the vertex set Δ the paper's M-Loc algorithm
// uses: all pairwise circle-circle intersection points that lie inside every
// disc. For a single disc — where no pairwise intersections exist — the disc
// centre is returned so that the intersection region degenerates gracefully
// to the nearest-AP estimate, matching the paper's observation that with
// k = 1 disc-intersection reduces to the nearest-AP approach.
func RegionVertices(discs []Circle) []Point {
	return AppendRegionVertices(nil, discs)
}

// AppendRegionVertices is RegionVertices with caller-supplied storage: the
// vertex set is appended to dst and the extended slice returned. An
// unchanged dst means the region is empty. The enumeration order and
// numerics are bit-identical to RegionVertices.
func AppendRegionVertices(dst []Point, discs []Circle) []Point {
	switch len(discs) {
	case 0:
		return dst
	case 1:
		return append(dst, discs[0].C)
	}
	base := len(dst)
	for i := 0; i < len(discs); i++ {
		for j := i + 1; j < len(discs); j++ {
			p1, p2, n := discs[i].intersect2(discs[j])
			if n >= 1 && InAllDiscs(p1, discs) {
				dst = append(dst, p1)
			}
			if n == 2 && InAllDiscs(p2, discs) {
				dst = append(dst, p2)
			}
		}
	}
	if len(dst) > base {
		return dst
	}
	// No boundary vertices inside all discs. Either the region is empty, or
	// one disc is contained in all others (region == smallest disc). Detect
	// the latter: the centre of the smallest disc must be inside all discs.
	smallest := 0
	for i, d := range discs {
		if d.R < discs[smallest].R {
			smallest = i
		}
	}
	if InAllDiscs(discs[smallest].C, discs) {
		return append(dst, discs[smallest].C)
	}
	return dst
}

// BoundingBox returns the axis-aligned bounding box of the intersection of
// the discs (the intersection of the per-disc boxes). ok is false when the
// box is empty.
func BoundingBox(discs []Circle) (minP, maxP Point, ok bool) {
	if len(discs) == 0 {
		return Point{}, Point{}, false
	}
	minP = Point{X: math.Inf(-1), Y: math.Inf(-1)}
	maxP = Point{X: math.Inf(1), Y: math.Inf(1)}
	for _, d := range discs {
		minP.X = math.Max(minP.X, d.C.X-d.R)
		minP.Y = math.Max(minP.Y, d.C.Y-d.R)
		maxP.X = math.Min(maxP.X, d.C.X+d.R)
		maxP.Y = math.Min(maxP.Y, d.C.Y+d.R)
	}
	if minP.X > maxP.X || minP.Y > maxP.Y {
		return Point{}, Point{}, false
	}
	return minP, maxP, true
}
