package geom

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzIncrementalRegion is the differential fuzz oracle for the
// incremental Region: it decodes the input as a sequence of add/remove
// operations and, after every single step, requires the Region's area to
// match a from-scratch IntersectionArea within 1e-9 relative and its
// vertex set to match RegionVertices bit-for-bit on the live key-sorted
// disc set.
//
// Encoding: one opcode byte per step. Odd opcodes remove the live disc at
// index (op>>1) mod len (no-op when empty); even opcodes consume four
// more bytes and add a disc at centre (int8/4, int8/4) with radius
// (uint16 mod 1024)/16. The quantization (coordinates on a 0.25 m grid,
// radii on 1/16 m) makes exact tangency, containment and coincidence
// reachable while keeping configurations out of the sub-1e-7 razor band
// between the degenerate-fallback threshold and exact tangency, where
// the probe-based and analytic arc selections could legitimately differ.
func FuzzIncrementalRegion(f *testing.F) {
	// Tangent circles (external at d=8, internal at d=4), then remove.
	f.Add([]byte{
		0x00, 0x00, 0x00, 0x00, 0x80, // add (0,0) r=8
		0x00, 0x20, 0x00, 0x00, 0x40, // add (8,0) r=4: externally tangent
		0x00, 0x10, 0x00, 0x00, 0x40, // add (4,0) r=4: internally tangent to first
		0x01, 0x03, // remove, remove
	})
	// Contained discs: big disc, small disc strictly inside.
	f.Add([]byte{
		0x00, 0x00, 0x00, 0x01, 0x00, // add (0,0) r=16
		0x00, 0x04, 0x04, 0x00, 0x20, // add (1,1) r=2: contained
		0x00, 0xFC, 0x00, 0x00, 0x20, // add (-1,0) r=2: contained
		0x01,
	})
	// Coincident centres and coincident equal circles.
	f.Add([]byte{
		0x00, 0x08, 0x08, 0x00, 0x40, // add (2,2) r=4
		0x00, 0x08, 0x08, 0x00, 0x80, // add (2,2) r=8: concentric
		0x00, 0x08, 0x08, 0x00, 0x40, // add (2,2) r=4: coincident duplicate
		0x03, 0x01,
	})
	// Empty region: far-apart discs, then interleaved removes.
	f.Add([]byte{
		0x00, 0x84, 0x00, 0x00, 0x30, // add (-31,0) r=3
		0x00, 0x7C, 0x00, 0x00, 0x30, // add (31,0) r=3: disjoint
		0x00, 0x00, 0x40, 0x00, 0x30, // add (0,16) r=3
		0x01, 0x00, 0x00, 0x00, 0x00, 0x50, // remove, add (0,0) r=5
		0x05, 0x07,
	})
	// Sliding window: the tracked-device churn pattern.
	f.Add([]byte{
		0x00, 0x00, 0x00, 0x02, 0x00, // add (0,0) r=32
		0x00, 0x10, 0x00, 0x02, 0x00, // add (4,0) r=32
		0x00, 0x20, 0x00, 0x02, 0x00, // add (8,0) r=32
		0x01, 0x00, 0x30, 0x00, 0x02, 0x00, // remove oldest, add (12,0) r=32
		0x01, 0x00, 0x40, 0x00, 0x02, 0x00, // remove oldest, add (16,0) r=32
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		var r Region
		type live struct {
			key uint64
			c   Circle
		}
		var set []live
		nextKey := uint64(1)
		steps := 0
		for i := 0; i < len(data) && steps < 48; i++ {
			op := data[i]
			if op&1 == 1 {
				if len(set) == 0 {
					continue
				}
				idx := int(op>>1) % len(set)
				if !r.Remove(set[idx].key) {
					t.Fatalf("step %d: Remove(%d) = false", steps, set[idx].key)
				}
				set = append(set[:idx], set[idx+1:]...)
			} else {
				if len(set) >= 16 || i+4 >= len(data) {
					continue
				}
				c := Circle{
					C: Pt(float64(int8(data[i+1]))/4, float64(int8(data[i+2]))/4),
					R: float64(binary.BigEndian.Uint16(data[i+3:i+5])%1024) / 16,
				}
				i += 4
				r.Add(nextKey, c)
				set = append(set, live{nextKey, c})
				nextKey++
			}
			steps++

			discs := r.AppendCircles(nil)
			wantArea := IntersectionArea(discs)
			gotArea := r.Area()
			if tol := 1e-9 * (1 + math.Abs(wantArea)); math.Abs(gotArea-wantArea) > tol {
				t.Fatalf("step %d (k=%d, degen=%v): Area=%.17g, want %.17g",
					steps, len(discs), r.Degenerate(), gotArea, wantArea)
			}
			wantV := RegionVertices(discs)
			gotV := r.AppendVertices(nil)
			if len(wantV) != len(gotV) {
				t.Fatalf("step %d (k=%d, degen=%v): %d vertices, want %d\n got %v\nwant %v",
					steps, len(discs), r.Degenerate(), len(gotV), len(wantV), gotV, wantV)
			}
			for v := range wantV {
				if wantV[v] != gotV[v] {
					t.Fatalf("step %d (k=%d): vertex %d = %v, want %v (not bit-equal)",
						steps, len(discs), v, gotV[v], wantV[v])
				}
			}
		}
	})
}
