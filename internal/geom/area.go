package geom

import (
	"math"
	"math/rand"
	"sort"
	"sync"
)

// areaScratch holds the per-call working storage of IntersectionArea so
// repeated calls (the engine computes one region per fix) stay off the
// allocator.
type areaScratch struct {
	discs  []Circle
	events []float64
}

var areaScratchPool = sync.Pool{
	New: func() any { return new(areaScratch) },
}

// IntersectionArea computes the exact area of the intersection region of
// the closed discs via Green's theorem over the region's boundary arcs:
// for each circle, the arcs lying inside all other discs are part of the
// region boundary, and each arc contributes
//
//	1/2 ∫ (x dy − y dx) = 1/2 [R²Δθ + cx·R·Δsinθ − cy·R·Δcosθ]
//
// traversed counterclockwise. The method handles empty regions, single
// discs, lenses, and discs contained in all others uniformly.
//
// It returns 0 when the region is empty.
func IntersectionArea(discs []Circle) float64 {
	sc := areaScratchPool.Get().(*areaScratch)
	defer areaScratchPool.Put(sc)
	sc.discs = appendDeduped(sc.discs[:0], discs)
	discs = sc.discs
	switch len(discs) {
	case 0:
		return 0
	case 1:
		return discs[0].Area()
	}
	total := 0.0
	for i, ci := range discs {
		// Angles of intersection events on circle i.
		events := sc.events[:0]
		empty := false
		for j, cj := range discs {
			if i == j {
				continue
			}
			d := ci.C.Dist(cj.C)
			if d >= ci.R+cj.R {
				// Disjoint with some disc: whole region is empty.
				empty = true
				break
			}
			if d+ci.R <= cj.R {
				continue // circle i entirely inside disc j: no clipping by j
			}
			if d+cj.R <= ci.R {
				// Disc j entirely inside disc i: circle i's boundary lies
				// outside disc j everywhere, so circle i contributes nothing.
				empty = false
				events = events[:0]
				goto nextCircle
			}
			p1, p2, n := ci.intersect2(cj)
			if n >= 1 {
				events = append(events, math.Atan2(p1.Y-ci.C.Y, p1.X-ci.C.X))
			}
			if n == 2 {
				events = append(events, math.Atan2(p2.Y-ci.C.Y, p2.X-ci.C.X))
			}
		}
		sc.events = events[:0]
		if empty {
			return 0
		}
		if len(events) == 0 {
			// No clipping events: either the whole circle bounds the region
			// (circle i inside all other discs) or none of it does.
			probe := Point{X: ci.C.X + ci.R, Y: ci.C.Y}
			if inAllOthers(probe, discs, i) {
				total += arcGreen(ci, 0, 2*math.Pi)
			}
			continue
		}
		sort.Float64s(events)
		for e := 0; e < len(events); e++ {
			a1 := events[e]
			a2 := events[(e+1)%len(events)]
			if e == len(events)-1 {
				a2 += 2 * math.Pi
			}
			mid := (a1 + a2) / 2
			probe := Point{
				X: ci.C.X + ci.R*math.Cos(mid),
				Y: ci.C.Y + ci.R*math.Sin(mid),
			}
			if inAllOthers(probe, discs, i) {
				total += arcGreen(ci, a1, a2)
			}
		}
	nextCircle:
	}
	if total < 0 {
		total = 0
	}
	return total
}

// arcGreen is the Green's-theorem line-integral contribution of the ccw arc
// of circle c from angle a1 to a2.
func arcGreen(c Circle, a1, a2 float64) float64 {
	dt := a2 - a1
	return 0.5 * (c.R*c.R*dt +
		c.C.X*c.R*(math.Sin(a2)-math.Sin(a1)) -
		c.C.Y*c.R*(math.Cos(a2)-math.Cos(a1)))
}

func inAllOthers(p Point, discs []Circle, skip int) bool {
	for j, d := range discs {
		if j == skip {
			continue
		}
		// Use a slightly generous tolerance: probe points sit exactly on
		// circle boundaries and must not be rejected by round-off.
		if p.Dist(d.C) > d.R+1e-7*(1+d.R) {
			return false
		}
	}
	return true
}

// dedupeCircles removes circles coincident with an earlier one, which would
// otherwise double-count boundary contributions.
func dedupeCircles(discs []Circle) []Circle {
	return appendDeduped(make([]Circle, 0, len(discs)), discs)
}

// appendDeduped appends discs to dst, skipping circles coincident with one
// already appended in this call. dst must be empty (length 0).
func appendDeduped(dst, discs []Circle) []Circle {
	for _, c := range discs {
		dup := false
		for _, o := range dst {
			if c.C.Dist(o.C) < Eps && math.Abs(c.R-o.R) < Eps {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, c)
		}
	}
	return dst
}

// MonteCarloArea estimates the intersection area of the discs by rejection
// sampling n points uniformly in the region's bounding box using rng. It
// returns 0 when the bounding box is empty. Useful as an oracle for testing
// IntersectionArea and for regions too degenerate for the exact method.
func MonteCarloArea(discs []Circle, n int, rng *rand.Rand) float64 {
	minP, maxP, ok := BoundingBox(discs)
	if !ok || n <= 0 {
		return 0
	}
	w := maxP.X - minP.X
	h := maxP.Y - minP.Y
	if w <= 0 || h <= 0 {
		return 0
	}
	hits := 0
	for i := 0; i < n; i++ {
		p := Point{X: minP.X + rng.Float64()*w, Y: minP.Y + rng.Float64()*h}
		if InAllDiscs(p, discs) {
			hits++
		}
	}
	return w * h * float64(hits) / float64(n)
}

// RegionCentroidMC estimates the centroid of the intersection region by
// Monte-Carlo sampling. ok is false when the region appears empty after n
// samples. This is the area-centroid alternative to M-Loc's vertex centroid
// (used by the ablation bench).
func RegionCentroidMC(discs []Circle, n int, rng *rand.Rand) (Point, bool) {
	minP, maxP, ok := BoundingBox(discs)
	if !ok || n <= 0 {
		return Point{}, false
	}
	w := maxP.X - minP.X
	h := maxP.Y - minP.Y
	var sx, sy float64
	hits := 0
	for i := 0; i < n; i++ {
		p := Point{X: minP.X + rng.Float64()*w, Y: minP.Y + rng.Float64()*h}
		if InAllDiscs(p, discs) {
			sx += p.X
			sy += p.Y
			hits++
		}
	}
	if hits == 0 {
		return Point{}, false
	}
	return Point{X: sx / float64(hits), Y: sy / float64(hits)}, true
}
