package obs

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dot11"
)

// The sharding correctness property: a sharded store fed a capture stream
// must be observably identical to a single-shard store fed the same
// stream — for every query surface, including out-of-order ingest, mixed
// single/batched delivery, and interleaved window queries (which flip the
// per-device re-sort state). Save output must be byte-identical too.

// randomStream generates a deterministic pseudo-random capture stream:
// probe requests (with SSIDs), probe responses, associations, beacons,
// and junk, over nDev devices and nAP APs, with ~20% out-of-order
// timestamps and occasional NaN times.
func randomStream(rng *rand.Rand, n, nDev, nAP int) []FrameCapture {
	devs := make([]dot11.MAC, nDev)
	for i := range devs {
		devs[i] = dot11.MAC{0xDD, byte(rng.Intn(256)), 0, 0, byte(i >> 8), byte(i)}
	}
	aps := make([]dot11.MAC, nAP)
	for i := range aps {
		aps[i] = dot11.MAC{0xA0, byte(rng.Intn(256)), 0, 0, byte(i >> 8), byte(i)}
	}
	out := make([]FrameCapture, 0, n)
	clock := 0.0
	for i := 0; i < n; i++ {
		clock += rng.Float64() * 5
		t := clock
		switch {
		case rng.Float64() < 0.2:
			t -= rng.Float64() * 50 // out of order
		case rng.Float64() < 0.02:
			t = math.NaN()
		}
		dev := devs[rng.Intn(len(devs))]
		ap := aps[rng.Intn(len(aps))]
		var c FrameCapture
		switch rng.Intn(5) {
		case 0:
			ssid := ""
			if rng.Float64() < 0.7 {
				ssid = fmt.Sprintf("net-%d", rng.Intn(6))
			}
			c = FrameCapture{TimeSec: t, Frame: dot11.NewProbeRequest(dev, ssid, uint16(i))}
		case 1, 2:
			c = FrameCapture{TimeSec: t, Frame: dot11.NewProbeResponse(ap, dev, "x", 6, uint16(i)), FromAP: true}
		case 3:
			c = FrameCapture{TimeSec: t, Frame: &dot11.Frame{
				Type: dot11.TypeManagement, Subtype: dot11.SubtypeAssocReq,
				Addr1: ap, Addr2: dev, Addr3: ap, Seq: uint16(i),
			}}
		case 4:
			c = FrameCapture{TimeSec: t, Frame: dot11.NewBeacon(ap, "b", 1, 0, uint16(i)), FromAP: rng.Float64() < 0.5}
		}
		out = append(out, c)
	}
	return out
}

// feed delivers the stream identically to every store: a mix of
// single-frame ingest, frame batches and record batches, with window
// queries interleaved so some device logs get re-sorted mid-stream.
func feed(rng *rand.Rand, stream []FrameCapture, stores ...*Store) {
	i := 0
	for i < len(stream) {
		switch rng.Intn(4) {
		case 0: // single frame
			for _, s := range stores {
				s.Ingest(stream[i].TimeSec, stream[i].Frame, stream[i].FromAP)
			}
			i++
		case 1, 2: // frame batch
			n := 1 + rng.Intn(40)
			if i+n > len(stream) {
				n = len(stream) - i
			}
			for _, s := range stores {
				s.IngestFrames(stream[i : i+n])
			}
			i += n
		case 3: // record batch
			n := 1 + rng.Intn(10)
			recs := make([]Record, n)
			for j := range recs {
				recs[j] = Record{
					TimeSec: rng.Float64() * 500,
					Device:  dot11.MAC{0xEE, 0, 0, 0, 0, byte(rng.Intn(8))},
					AP:      dot11.MAC{0xA0, 0, 0, 0, 0, byte(rng.Intn(8))},
					Kind:    Kind(1 + rng.Intn(4)),
				}
			}
			for _, s := range stores {
				s.IngestBatch(recs)
			}
		}
		// Interleaved queries dirty-check and re-sort some logs.
		if rng.Float64() < 0.3 {
			dev := dot11.MAC{0xDD, 0, 0, 0, 0, byte(rng.Intn(8))}
			start := rng.Float64() * 400
			for _, s := range stores {
				s.APSetWindow(dev, start, start+50)
			}
		}
	}
}

func TestShardedEquivalentToSingleShard(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		stream := randomStream(rng, 1500, 24, 12)
		single := NewStoreShards(1)
		sharded := NewStoreShards(8)
		feed(rand.New(rand.NewSource(seed*7+1)), stream, single, sharded)

		if a, b := single.Len(), sharded.Len(); a != b {
			t.Fatalf("seed %d: Len %d != %d", seed, a, b)
		}
		if !reflect.DeepEqual(single.Devices(), sharded.Devices()) {
			t.Fatalf("seed %d: Devices differ", seed)
		}
		if !reflect.DeepEqual(single.ProbingDevices(), sharded.ProbingDevices()) {
			t.Fatalf("seed %d: ProbingDevices differ", seed)
		}
		if !reflect.DeepEqual(single.APs(), sharded.APs()) {
			t.Fatalf("seed %d: APs differ", seed)
		}
		if !reflect.DeepEqual(single.DeviceAPSets(), sharded.DeviceAPSets()) {
			t.Fatalf("seed %d: DeviceAPSets differ", seed)
		}
		for _, dev := range single.Devices() {
			for w := 0; w < 8; w++ {
				start := float64(w) * 60
				a := single.APSetWindow(dev, start, start+60)
				b := sharded.APSetWindow(dev, start, start+60)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("seed %d: window [%v,%v) for %v: %v != %v", seed, start, start+60, dev, a, b)
				}
			}
			if !reflect.DeepEqual(single.APSet(dev), sharded.APSet(dev)) {
				t.Fatalf("seed %d: APSet(%v) differs", seed, dev)
			}
			if !reflect.DeepEqual(single.FingerprintOf(dev), sharded.FingerprintOf(dev)) {
				t.Fatalf("seed %d: FingerprintOf(%v) differs", seed, dev)
			}
		}
		aps := single.APs()
		qrng := rand.New(rand.NewSource(seed * 13))
		for q := 0; q < 40 && len(aps) > 0; q++ {
			a1 := aps[qrng.Intn(len(aps))]
			a2 := aps[qrng.Intn(len(aps))]
			w := qrng.Float64() * 100
			if x, y := single.CoObserved(a1, a2, w), sharded.CoObserved(a1, a2, w); x != y {
				t.Fatalf("seed %d: CoObserved(%v,%v,%v) = %v vs %v", seed, a1, a2, w, x, y)
			}
		}
		// The co-observation index must match per device. NaN-timestamped
		// records defeat DeepEqual (NaN != NaN), so compare via string form.
		ia, ib := single.CoObservationIndex(), sharded.CoObservationIndex()
		if len(ia) != len(ib) {
			t.Fatalf("seed %d: CoObservationIndex sizes %d != %d", seed, len(ia), len(ib))
		}
		for dev := range ia {
			if fmt.Sprint(ia[dev]) != fmt.Sprint(ib[dev]) {
				t.Fatalf("seed %d: CoObservationIndex(%v) differs:\n%v\n%v", seed, dev, ia[dev], ib[dev])
			}
		}
		// Save is JSON and rejects NaN timestamps (on any shard count), so
		// the byte-equality check runs on the NaN-free records.
		clean := stream[:0:0]
		for _, c := range stream {
			if !math.IsNaN(c.TimeSec) {
				clean = append(clean, c)
			}
		}
		s1, s8 := NewStoreShards(1), NewStoreShards(8)
		feed(rand.New(rand.NewSource(seed*7+1)), clean, s1, s8)
		var sa, sb bytes.Buffer
		if err := s1.Save(&sa); err != nil {
			t.Fatal(err)
		}
		if err := s8.Save(&sb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sa.Bytes(), sb.Bytes()) {
			t.Fatalf("seed %d: Save output differs between shard counts", seed)
		}
	}
}

// LinkPseudonyms is a pure function of the fingerprint sets, which the
// equivalence above already pins; this checks the cross-shard MAC gather
// directly on a small case.
func TestLinkPseudonymsSharded(t *testing.T) {
	single := NewStoreShards(1)
	sharded := NewStoreShards(8)
	for _, s := range []*Store{single, sharded} {
		for i := byte(0); i < 6; i++ {
			for _, ssid := range []string{"alpha", "beta", fmt.Sprintf("own-%d", i%3)} {
				s.Ingest(float64(i), dot11.NewProbeRequest(mac(i), ssid, 1), false)
			}
		}
	}
	if a, b := single.LinkPseudonyms(0.5), sharded.LinkPseudonyms(0.5); !reflect.DeepEqual(a, b) {
		t.Fatalf("LinkPseudonyms differ:\n%v\n%v", a, b)
	}
}
