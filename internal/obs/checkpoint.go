package obs

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"
)

// checkpointFormat is the on-disk checkpoint format version. Readers
// reject files written by a different version instead of guessing.
const checkpointFormat = 1

// checkpointExt names checkpoint files so Recover can find them without a
// manifest.
const checkpointExt = ".ckpt"

// DefaultCheckpointKeep is how many generations a Checkpointer retains
// when Keep is unset: the newest plus two fallbacks in case the newest is
// torn by a crash mid-rename (shouldn't happen — rename is atomic — but
// disks lie).
const DefaultCheckpointKeep = 3

// CheckpointMeta is the header line of a checkpoint file: one line of
// JSON describing the Save payload that follows, so a reader can verify
// integrity before trusting the contents.
type CheckpointMeta struct {
	// Format is the checkpoint format version (checkpointFormat).
	Format int `json:"format"`
	// Generation is the writer's monotonic checkpoint counter.
	Generation uint64 `json:"generation"`
	// SHA256 is the hex digest of the payload bytes after this header line.
	SHA256 string `json:"sha256"`
	// Records is the store's record count at snapshot time, a cheap
	// cross-check on top of the digest.
	Records int `json:"records"`
}

// CheckpointPath returns the canonical file name for a generation. The
// zero-padded decimal makes lexical order equal generation order, so
// Recover can sort directory listings without parsing.
func CheckpointPath(dir string, generation uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%016d%s", generation, checkpointExt))
}

// WriteFileAtomic writes a file via a temporary sibling, fsyncs it, and
// renames it over the target, so readers never observe a torn file: they
// see the old content or the new, nothing in between. The parent
// directory is fsynced after the rename so the new name survives a crash.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("obs: atomic write %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err = write(bw); err != nil {
		return fmt.Errorf("obs: atomic write %s: %w", path, err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("obs: atomic write %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("obs: atomic write %s: sync: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("obs: atomic write %s: close: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("obs: atomic write %s: rename: %w", path, err)
	}
	// Persist the rename itself. Directory fsync can fail on exotic
	// filesystems; the data is already safe, so log-worthy but not fatal.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// WriteCheckpoint atomically writes one generation-numbered, checksummed
// snapshot of the store into dir, returning the file path.
func WriteCheckpoint(dir string, generation uint64, s *Store) (string, error) {
	var payload bytes.Buffer
	if err := s.Save(&payload); err != nil {
		return "", fmt.Errorf("obs: checkpoint: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())
	meta := CheckpointMeta{
		Format:     checkpointFormat,
		Generation: generation,
		SHA256:     hex.EncodeToString(sum[:]),
		Records:    s.Len(),
	}
	header, err := json.Marshal(meta)
	if err != nil {
		return "", fmt.Errorf("obs: checkpoint: %w", err)
	}
	path := CheckpointPath(dir, generation)
	err = WriteFileAtomic(path, func(w io.Writer) error {
		if _, err := w.Write(header); err != nil {
			return err
		}
		if _, err := w.Write([]byte{'\n'}); err != nil {
			return err
		}
		_, err := w.Write(payload.Bytes())
		return err
	})
	if err != nil {
		mCkptFailures.Inc()
		return "", err
	}
	mCkptWrites.Inc()
	mCkptGeneration.Set(float64(generation))
	return path, nil
}

// ReadCheckpoint loads one checkpoint file, verifying the format version,
// payload checksum, and record count before handing the bytes to the
// snapshot loader. shards <= 0 means the default shard count.
func ReadCheckpoint(path string, shards int) (*Store, CheckpointMeta, error) {
	var meta CheckpointMeta
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, meta, fmt.Errorf("obs: checkpoint %s: %w", path, err)
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, meta, fmt.Errorf("obs: checkpoint %s: truncated: no header line", path)
	}
	if err := json.Unmarshal(raw[:nl], &meta); err != nil {
		return nil, meta, fmt.Errorf("obs: checkpoint %s: bad header: %w", path, err)
	}
	if meta.Format != checkpointFormat {
		return nil, meta, fmt.Errorf("obs: checkpoint %s: format %d, want %d", path, meta.Format, checkpointFormat)
	}
	payload := raw[nl+1:]
	sum := sha256.Sum256(payload)
	if got := hex.EncodeToString(sum[:]); got != meta.SHA256 {
		return nil, meta, fmt.Errorf("obs: checkpoint %s: checksum mismatch: payload %s, header %s", path, got, meta.SHA256)
	}
	s, err := LoadShards(bytes.NewReader(payload), shards)
	if err != nil {
		return nil, meta, fmt.Errorf("obs: checkpoint %s: %w", path, err)
	}
	if s.Len() != meta.Records {
		return nil, meta, fmt.Errorf("obs: checkpoint %s: %d records, header says %d", path, s.Len(), meta.Records)
	}
	return s, meta, nil
}

// SkippedCheckpoint records one checkpoint file Recover could not use.
type SkippedCheckpoint struct {
	Path string
	Err  error
}

// RecoverInfo describes the outcome of a Recover call.
type RecoverInfo struct {
	// Path is the checkpoint file that was restored ("" when none was).
	Path string
	// Meta is the restored checkpoint's header.
	Meta CheckpointMeta
	// Skipped lists newer-but-invalid checkpoints that were passed over,
	// newest first.
	Skipped []SkippedCheckpoint
}

// Recover loads the newest valid checkpoint in dir, skipping (and
// reporting) corrupt or unreadable ones. A missing or empty directory is
// not an error — there is simply nothing to recover, and the returned
// store is nil.
func Recover(dir string, shards int) (*Store, RecoverInfo, error) {
	var info RecoverInfo
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, info, nil
		}
		return nil, info, fmt.Errorf("obs: recover: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == checkpointExt {
			names = append(names, e.Name())
		}
	}
	// Zero-padded generations: lexical order is generation order.
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	for _, name := range names {
		path := filepath.Join(dir, name)
		s, meta, err := ReadCheckpoint(path, shards)
		if err != nil {
			info.Skipped = append(info.Skipped, SkippedCheckpoint{Path: path, Err: err})
			continue
		}
		info.Path = path
		info.Meta = meta
		return s, info, nil
	}
	return nil, info, nil
}

// Checkpointer periodically snapshots a store into a directory, pruning
// old generations. It is the crash-safety layer for long captures: after
// a kill, Recover restores the last completed snapshot.
type Checkpointer struct {
	// Dir is the checkpoint directory, created on first write.
	Dir string
	// Interval is the period between automatic snapshots in Run.
	Interval time.Duration
	// Keep bounds how many generations stay on disk (<= 0 means
	// DefaultCheckpointKeep).
	Keep int
	// Source returns the store to snapshot. Called once per checkpoint,
	// so the store can be swapped between runs.
	Source func() *Store
	// AfterCheckpoint, when set, runs after each successful snapshot with
	// the generation just written — the hook other durable state (e.g. the
	// capture agents' ack cursors) uses to persist alongside the store at
	// a known generation. Failures in the hook are the hook's to report.
	AfterCheckpoint func(generation uint64)

	gen atomic.Uint64
}

// SetGeneration seeds the generation counter, so a process restarted from
// a recovered checkpoint numbers its snapshots after the one it loaded.
func (c *Checkpointer) SetGeneration(g uint64) { c.gen.Store(g) }

// Generation returns the last written (or seeded) generation.
func (c *Checkpointer) Generation() uint64 { return c.gen.Load() }

// CheckpointNow takes one snapshot immediately: bumps the generation,
// writes it atomically, and prunes old files past Keep.
func (c *Checkpointer) CheckpointNow() (string, error) {
	s := c.Source()
	if s == nil {
		return "", fmt.Errorf("obs: checkpoint: no store")
	}
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		mCkptFailures.Inc()
		return "", fmt.Errorf("obs: checkpoint: %w", err)
	}
	gen := c.gen.Add(1)
	path, err := WriteCheckpoint(c.Dir, gen, s)
	if err != nil {
		return "", err
	}
	c.prune()
	if c.AfterCheckpoint != nil {
		c.AfterCheckpoint(gen)
	}
	return path, nil
}

// prune removes all but the newest Keep checkpoint files. Best-effort:
// a failed removal leaves a stale file, never a broken checkpoint.
func (c *Checkpointer) prune() {
	keep := c.Keep
	if keep <= 0 {
		keep = DefaultCheckpointKeep
	}
	entries, err := os.ReadDir(c.Dir)
	if err != nil {
		return
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == checkpointExt {
			names = append(names, e.Name())
		}
	}
	if len(names) <= keep {
		return
	}
	sort.Strings(names)
	for _, name := range names[:len(names)-keep] {
		_ = os.Remove(filepath.Join(c.Dir, name))
	}
}

// Run checkpoints every Interval until ctx is cancelled. The caller is
// expected to take a final CheckpointNow on shutdown; Run itself stops
// quietly so cancellation stays fast.
func (c *Checkpointer) Run(ctx context.Context) {
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	t := time.NewTicker(c.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if path, err := c.CheckpointNow(); err != nil {
				slog.Warn("checkpoint failed", "dir", c.Dir, "err", err)
			} else {
				slog.Debug("checkpoint written", "path", path)
			}
		}
	}
}
