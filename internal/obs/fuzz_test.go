package obs

import (
	"encoding/binary"
	"math"
	"reflect"
	"testing"

	"repro/internal/dot11"
)

// decodeFuzzRecords interprets arbitrary fuzz bytes as a record stream:
// each record consumes 11 bytes — 8 for the float64 timestamp (any bit
// pattern, so NaN/Inf/denormals all occur), one selecting the device,
// one selecting the AP, one the record kind. The decoder never rejects
// input; whatever the fuzzer produces becomes a well-formed []Record.
func decodeFuzzRecords(data []byte) []Record {
	const stride = 11
	// Cap the stream so the cross-shard invariant sweep below stays fast
	// even when the fuzzer inflates inputs to hundreds of kilobytes.
	if len(data) > 8*1024 {
		data = data[:8*1024]
	}
	recs := make([]Record, 0, len(data)/stride)
	for len(data) >= stride {
		t := math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
		recs = append(recs, Record{
			TimeSec: t,
			Device:  dot11.MAC{0xDD, 0, 0, 0, 0, data[8]},
			AP:      dot11.MAC{0xA0, 0, 0, 0, 0, data[9]},
			Kind:    Kind(data[10] % 5),
		})
		data = data[stride:]
	}
	return recs
}

// FuzzIngest feeds arbitrary record streams — including NaN, ±Inf and
// wildly out-of-order timestamps — into a single-shard and a 4-shard
// store. Nothing may panic, every record must be retained (Len equals
// the ingested count), and window queries must agree across shard
// counts.
func FuzzIngest(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3})
	// NaN timestamp, then two in-order records on the same device.
	nan := make([]byte, 8)
	binary.LittleEndian.PutUint64(nan, math.Float64bits(math.NaN()))
	f.Add(append(append([]byte{}, append(nan, 5, 6, 1)...),
		100, 0, 0, 0, 0, 0, 0x59, 0x40, 5, 7, 2, // t=100.0...ish bit pattern
		0, 0, 0, 0, 0, 0, 0x24, 0x40, 5, 8, 1)) // t=10
	inf := make([]byte, 8)
	binary.LittleEndian.PutUint64(inf, math.Float64bits(math.Inf(-1)))
	f.Add(append(append([]byte{}, append(inf, 1, 1, 3)...), nan...))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs := decodeFuzzRecords(data)
		one := NewStoreShards(1)
		four := NewStoreShards(4)
		if got := one.IngestBatch(recs); got != len(recs) {
			t.Fatalf("IngestBatch reported %d of %d", got, len(recs))
		}
		four.IngestBatch(recs)
		if one.Len() != len(recs) || four.Len() != len(recs) {
			t.Fatalf("Len: single=%d sharded=%d want %d", one.Len(), four.Len(), len(recs))
		}
		for _, dev := range one.Devices() {
			a := one.APSetWindow(dev, 0, 1e12)
			b := four.APSetWindow(dev, 0, 1e12)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("window for %v: %v != %v", dev, a, b)
			}
			if !reflect.DeepEqual(one.APSet(dev), four.APSet(dev)) {
				t.Fatalf("APSet for %v differs", dev)
			}
		}
		if !reflect.DeepEqual(one.APs(), four.APs()) {
			t.Fatalf("APs: %v != %v", one.APs(), four.APs())
		}
	})
}
