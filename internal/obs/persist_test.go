package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dot11"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	dev, ap := mac(1), mac(0xA1)
	s.Ingest(1, dot11.NewProbeRequest(dev, "home-net", 1), false)
	s.Ingest(2, dot11.NewProbeResponse(ap, dev, "x", 6, 2), true)
	s.Ingest(3, dot11.NewBeacon(mac(0xA2), "b", 1, 0, 0), true)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Errorf("records %d != %d", got.Len(), s.Len())
	}
	if !reflect.DeepEqual(got.Devices(), s.Devices()) {
		t.Errorf("devices %v != %v", got.Devices(), s.Devices())
	}
	if !reflect.DeepEqual(got.ProbingDevices(), s.ProbingDevices()) {
		t.Error("probing sets differ")
	}
	if !reflect.DeepEqual(got.APs(), s.APs()) {
		t.Errorf("aps %v != %v", got.APs(), s.APs())
	}
	if !reflect.DeepEqual(got.APSet(dev), s.APSet(dev)) {
		t.Error("AP sets differ")
	}
	if !reflect.DeepEqual(got.FingerprintOf(dev), s.FingerprintOf(dev)) {
		t.Errorf("fingerprints differ: %v vs %v",
			got.FingerprintOf(dev), s.FingerprintOf(dev))
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewStore().Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || len(got.Devices()) != 0 {
		t.Error("empty store should load empty")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{not json")); err == nil {
		t.Error("want error for garbage input")
	}
}

func TestSaveDeterministic(t *testing.T) {
	s := NewStore()
	for i := byte(0); i < 5; i++ {
		s.Ingest(float64(i), dot11.NewProbeResponse(mac(0xA0+i), mac(i), "", 1, 1), true)
		s.Ingest(float64(i), dot11.NewProbeRequest(mac(i), "net", 1), false)
	}
	var a, b bytes.Buffer
	if err := s.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("Save output must be deterministic")
	}
}
