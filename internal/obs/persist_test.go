package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dot11"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	dev, ap := mac(1), mac(0xA1)
	s.Ingest(1, dot11.NewProbeRequest(dev, "home-net", 1), false)
	s.Ingest(2, dot11.NewProbeResponse(ap, dev, "x", 6, 2), true)
	s.Ingest(3, dot11.NewBeacon(mac(0xA2), "b", 1, 0, 0), true)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Errorf("records %d != %d", got.Len(), s.Len())
	}
	if !reflect.DeepEqual(got.Devices(), s.Devices()) {
		t.Errorf("devices %v != %v", got.Devices(), s.Devices())
	}
	if !reflect.DeepEqual(got.ProbingDevices(), s.ProbingDevices()) {
		t.Error("probing sets differ")
	}
	if !reflect.DeepEqual(got.APs(), s.APs()) {
		t.Errorf("aps %v != %v", got.APs(), s.APs())
	}
	if !reflect.DeepEqual(got.APSet(dev), s.APSet(dev)) {
		t.Error("AP sets differ")
	}
	if !reflect.DeepEqual(got.FingerprintOf(dev), s.FingerprintOf(dev)) {
		t.Errorf("fingerprints differ: %v vs %v",
			got.FingerprintOf(dev), s.FingerprintOf(dev))
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewStore().Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || len(got.Devices()) != 0 {
		t.Error("empty store should load empty")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{not json")); err == nil {
		t.Error("want error for garbage input")
	}
}

func TestLoadRejectsDuplicateEntries(t *testing.T) {
	cases := []struct {
		name, snap, wantErr string
	}{
		{
			"duplicate seen",
			`{"records":[],"seen":[{"mac":[0,0,0,0,0,1],"first":1},{"mac":[0,0,0,0,0,2],"first":2},{"mac":[0,0,0,0,0,1],"first":3}],"probing":[],"aps":[]}`,
			"duplicate seen entry for 00:00:00:00:00:01 at index 2 (first at index 0)",
		},
		{
			"duplicate probing",
			`{"records":[],"seen":[],"probing":[[0,0,0,0,0,5],[0,0,0,0,0,5]],"aps":[]}`,
			"duplicate probing entry for 00:00:00:00:00:05 at index 1 (first at index 0)",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Load(strings.NewReader(tc.snap))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestLoadShardsRespectsCount(t *testing.T) {
	s := NewStore()
	for i := byte(0); i < 8; i++ {
		s.Ingest(float64(i), dot11.NewProbeResponse(mac(0xA0+i), mac(i), "", 1, 1), true)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadShards(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.ShardCount() != 2 {
		t.Errorf("shard count = %d, want 2", got.ShardCount())
	}
	if got.Len() != s.Len() {
		t.Errorf("record count %d != %d after re-sharded load", got.Len(), s.Len())
	}
}

func TestSaveDeterministic(t *testing.T) {
	s := NewStore()
	for i := byte(0); i < 5; i++ {
		s.Ingest(float64(i), dot11.NewProbeResponse(mac(0xA0+i), mac(i), "", 1, 1), true)
		s.Ingest(float64(i), dot11.NewProbeRequest(mac(i), "net", 1), false)
	}
	var a, b bytes.Buffer
	if err := s.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("Save output must be deterministic")
	}
}
