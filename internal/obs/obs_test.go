package obs

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/dot11"
)

func mac(i byte) dot11.MAC { return dot11.MAC{0, 0, 0, 0, 0, i} }

func TestIngestClassification(t *testing.T) {
	s := NewStore()
	dev, ap := mac(1), mac(0xA1)

	s.Ingest(1, dot11.NewProbeRequest(dev, "", 1), false)
	if got := s.Devices(); len(got) != 1 || got[0] != dev {
		t.Errorf("devices = %v", got)
	}
	if got := s.ProbingDevices(); len(got) != 1 || got[0] != dev {
		t.Errorf("probing = %v", got)
	}
	if s.Len() != 0 {
		t.Error("probe request alone should create no pairwise record")
	}

	s.Ingest(2, dot11.NewProbeResponse(ap, dev, "x", 6, 2), true)
	if s.Len() != 1 {
		t.Errorf("records = %d", s.Len())
	}
	if got := s.APSet(dev); len(got) != 1 || got[0] != ap {
		t.Errorf("APSet = %v", got)
	}
	if got := s.APs(); len(got) != 1 || got[0] != ap {
		t.Errorf("APs = %v", got)
	}
}

func TestIngestIgnoresJunk(t *testing.T) {
	s := NewStore()
	s.Ingest(0, nil, false)
	s.Ingest(0, &dot11.Frame{Type: dot11.TypeData}, false)
	s.Ingest(0, dot11.NewBeacon(mac(0xA2), "b", 1, 0, 0), false) // fromAP=false: untrusted
	if s.Len() != 0 || len(s.Devices()) != 0 || len(s.APs()) != 0 {
		t.Error("junk frames must not create state")
	}
	s.Ingest(0, dot11.NewBeacon(mac(0xA2), "b", 1, 0, 0), true)
	if got := s.APs(); len(got) != 1 {
		t.Errorf("beacon fromAP should register the AP, got %v", got)
	}
}

func TestAssociationRecords(t *testing.T) {
	s := NewStore()
	dev, ap := mac(3), mac(0xA3)
	fr := &dot11.Frame{
		Type: dot11.TypeManagement, Subtype: dot11.SubtypeAssocReq,
		Addr1: ap, Addr2: dev, Addr3: ap,
	}
	s.Ingest(5, fr, false)
	if got := s.APSet(dev); len(got) != 1 || got[0] != ap {
		t.Errorf("APSet = %v", got)
	}
	// The device is found but not probing.
	if len(s.ProbingDevices()) != 0 {
		t.Error("assoc traffic must not mark device probing")
	}
	if len(s.Devices()) != 1 {
		t.Error("assoc traffic must mark device found")
	}
}

func TestAPSetWindow(t *testing.T) {
	s := NewStore()
	dev := mac(1)
	s.Ingest(10, dot11.NewProbeResponse(mac(0xA1), dev, "", 1, 1), true)
	s.Ingest(20, dot11.NewProbeResponse(mac(0xA2), dev, "", 6, 2), true)
	s.Ingest(30, dot11.NewProbeResponse(mac(0xA3), dev, "", 11, 3), true)
	if got := s.APSetWindow(dev, 15, 25); len(got) != 1 || got[0] != mac(0xA2) {
		t.Errorf("window = %v", got)
	}
	if got := s.APSet(dev); len(got) != 3 {
		t.Errorf("full set = %v", got)
	}
	if got := s.APSetWindow(dev, 100, 200); len(got) != 0 {
		t.Errorf("empty window = %v", got)
	}
}

func TestDeviceAPSets(t *testing.T) {
	s := NewStore()
	d1, d2 := mac(1), mac(2)
	s.Ingest(1, dot11.NewProbeResponse(mac(0xA1), d1, "", 1, 1), true)
	s.Ingest(1, dot11.NewProbeResponse(mac(0xA2), d1, "", 1, 1), true)
	s.Ingest(1, dot11.NewProbeResponse(mac(0xA2), d1, "", 1, 2), true) // duplicate
	s.Ingest(2, dot11.NewProbeResponse(mac(0xA2), d2, "", 6, 1), true)
	sets := s.DeviceAPSets()
	if len(sets) != 2 {
		t.Fatalf("sets = %v", sets)
	}
	if want := []dot11.MAC{mac(0xA1), mac(0xA2)}; !reflect.DeepEqual(sets[d1], want) {
		t.Errorf("d1 set = %v, want %v (sorted, deduped)", sets[d1], want)
	}
	if len(sets[d2]) != 1 {
		t.Errorf("d2 set = %v", sets[d2])
	}
}

func TestCoObserved(t *testing.T) {
	s := NewStore()
	dev := mac(1)
	a1, a2, a3 := mac(0xA1), mac(0xA2), mac(0xA3)
	s.Ingest(100, dot11.NewProbeResponse(a1, dev, "", 1, 1), true)
	s.Ingest(105, dot11.NewProbeResponse(a2, dev, "", 6, 1), true)
	s.Ingest(9999, dot11.NewProbeResponse(a3, dev, "", 11, 1), true)
	if !s.CoObserved(a1, a2, 10) {
		t.Error("a1,a2 co-observed within 10 s")
	}
	if s.CoObserved(a1, a3, 10) {
		t.Error("a1,a3 seen hours apart must not be co-observed at 10 s window")
	}
	if !s.CoObserved(a1, a3, 1e6) {
		t.Error("a1,a3 co-observed at huge window")
	}
	if s.CoObserved(a1, mac(0xEE), 1e6) {
		t.Error("unknown AP cannot be co-observed")
	}
}

func TestCoObservationIndex(t *testing.T) {
	s := NewStore()
	dev := mac(4)
	s.Ingest(1, dot11.NewProbeResponse(mac(0xA1), dev, "", 1, 1), true)
	s.Ingest(2, dot11.NewProbeResponse(mac(0xA2), dev, "", 6, 1), true)
	idx := s.CoObservationIndex()
	if len(idx[dev]) != 2 {
		t.Errorf("index = %v", idx)
	}
}

func TestStoreConcurrency(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dev := mac(byte(g))
			for i := 0; i < 100; i++ {
				s.Ingest(float64(i), dot11.NewProbeResponse(mac(0xA0+byte(i%5)), dev, "", 1, uint16(i)), true)
				s.APSet(dev)
				s.Devices()
			}
		}(g)
	}
	wg.Wait()
	if len(s.Devices()) != 8 {
		t.Errorf("devices = %d, want 8", len(s.Devices()))
	}
	if len(s.APs()) != 5 {
		t.Errorf("aps = %d, want 5", len(s.APs()))
	}
}

func TestDevicesSorted(t *testing.T) {
	s := NewStore()
	for _, b := range []byte{9, 3, 7, 1} {
		s.Ingest(0, dot11.NewProbeRequest(mac(b), "", 0), false)
	}
	devs := s.Devices()
	for i := 1; i < len(devs); i++ {
		if devs[i-1][5] > devs[i][5] {
			t.Fatalf("not sorted: %v", devs)
		}
	}
}

func TestAppendAPSetWindowReuseAndOrder(t *testing.T) {
	s := NewStore()
	dev := mac(1)
	// Deliberately ingest out of MAC order and with duplicate sightings.
	s.Ingest(10, dot11.NewProbeResponse(mac(0xC3), dev, "", 1, 1), true)
	s.Ingest(11, dot11.NewProbeResponse(mac(0xA1), dev, "", 6, 2), true)
	s.Ingest(12, dot11.NewProbeResponse(mac(0xB2), dev, "", 11, 3), true)
	s.Ingest(13, dot11.NewProbeResponse(mac(0xA1), dev, "", 6, 4), true)

	want := []dot11.MAC{mac(0xA1), mac(0xB2), mac(0xC3)}
	if got := s.APSetWindow(dev, 0, 100); !reflect.DeepEqual(got, want) {
		t.Fatalf("APSetWindow = %v, want ascending %v", got, want)
	}

	buf := make([]dot11.MAC, 0, 8)
	got := s.AppendAPSetWindow(buf, dev, 0, 100)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AppendAPSetWindow = %v, want %v", got, want)
	}
	if &got[0] != &buf[:1][0] {
		t.Error("AppendAPSetWindow reallocated despite sufficient capacity")
	}
	// Appending preserves a non-empty prefix.
	pre := []dot11.MAC{mac(0xFF)}
	got = s.AppendAPSetWindow(pre, dev, 11.5, 12.5)
	if len(got) != 2 || got[0] != mac(0xFF) || got[1] != mac(0xB2) {
		t.Fatalf("prefix append = %v", got)
	}
}

// Regression: in the unsharded seed store, out-of-order detection used a
// plain < comparison against the log tail. A NaN-timestamped record made
// that comparison false forever after, so the log kept its sorted flag
// while actually out of order, and the binary search silently dropped
// every later out-of-order record from window results — the t=10 probe
// below vanished from APSetWindow(0, 20) and even from the full APSet.
func TestAPSetWindowNaNDoesNotDropLaterRecords(t *testing.T) {
	for _, shards := range []int{1, 4} {
		s := NewStoreShards(shards)
		dev := mac(1)
		s.Ingest(50, dot11.NewProbeResponse(mac(0xA2), dev, "", 1, 1), true)
		s.Ingest(math.NaN(), dot11.NewProbeResponse(mac(0xA9), dev, "", 6, 2), true)
		s.Ingest(10, dot11.NewProbeResponse(mac(0xA1), dev, "", 11, 3), true)

		if got := s.APSetWindow(dev, 0, 20); len(got) != 1 || got[0] != mac(0xA1) {
			t.Errorf("shards=%d: window [0,20) = %v, want [%v]", shards, got, mac(0xA1))
		}
		// The NaN record matches no window; the two real ones must both
		// survive in the full set.
		if got := s.APSet(dev); len(got) != 2 {
			t.Errorf("shards=%d: full set = %v, want the 2 finite-time APs", shards, got)
		}
		if s.Len() != 3 {
			t.Errorf("shards=%d: Len = %d, want 3 (NaN record still stored)", shards, s.Len())
		}
	}
}

// An out-of-order record ingested between two window queries (i.e. after
// the first query's re-sort) must appear in the second query's results.
func TestAPSetWindowOutOfOrderAfterResort(t *testing.T) {
	s := NewStoreShards(2)
	dev := mac(1)
	s.Ingest(50, dot11.NewProbeResponse(mac(0xA2), dev, "", 1, 1), true)
	s.Ingest(10, dot11.NewProbeResponse(mac(0xA1), dev, "", 6, 2), true) // dirty the log
	if got := s.APSetWindow(dev, 0, 100); len(got) != 2 {
		t.Fatalf("first query = %v", got) // triggers the re-sort
	}
	s.Ingest(5, dot11.NewProbeResponse(mac(0xA0), dev, "", 11, 3), true) // out of order again
	if got := s.APSetWindow(dev, 0, 8); len(got) != 1 || got[0] != mac(0xA0) {
		t.Fatalf("post-resort out-of-order record dropped: window [0,8) = %v", got)
	}
}

func TestShardRouting(t *testing.T) {
	s := NewStoreShards(8)
	if s.ShardCount() != 8 {
		t.Fatalf("ShardCount = %d", s.ShardCount())
	}
	// 64 devices, one record each: per-shard counts must sum to Len and
	// every device must stay queryable.
	for i := 0; i < 64; i++ {
		dev := dot11.MAC{0xDD, 0, 0, 0, byte(i >> 8), byte(i)}
		s.Ingest(float64(i), dot11.NewProbeResponse(mac(0xA1), dev, "", 1, 1), true)
	}
	total := 0
	for _, n := range s.ShardLens() {
		total += n
	}
	if total != 64 || s.Len() != 64 {
		t.Errorf("shard lens sum %d, Len %d, want 64", total, s.Len())
	}
	if got := len(s.Devices()); got != 64 {
		t.Errorf("devices = %d, want 64", got)
	}
}

func TestNewStoreShardsRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		if got := NewStoreShards(tc.in).ShardCount(); got != tc.want {
			t.Errorf("NewStoreShards(%d).ShardCount() = %d, want %d", tc.in, got, tc.want)
		}
	}
	if got := NewStoreShards(0).ShardCount(); got != DefaultShardCount() {
		t.Errorf("default shard count = %d, want %d", got, DefaultShardCount())
	}
}

func TestIngestFramesBatch(t *testing.T) {
	s := NewStoreShards(4)
	batch := []FrameCapture{
		{TimeSec: 1, Frame: dot11.NewProbeRequest(mac(1), "home", 1)},
		{TimeSec: 2, Frame: dot11.NewProbeResponse(mac(0xA1), mac(1), "x", 6, 2), FromAP: true},
		{TimeSec: 3, Frame: dot11.NewProbeResponse(mac(0xA2), mac(2), "y", 1, 3), FromAP: true},
		{TimeSec: 4, Frame: dot11.NewBeacon(mac(0xA3), "b", 1, 0, 0), FromAP: true},
		{TimeSec: 5, Frame: dot11.NewBeacon(mac(0xA4), "b", 1, 0, 0), FromAP: false}, // untrusted: no-op
		{TimeSec: 6, Frame: nil},
	}
	if n := s.IngestFrames(batch); n != 4 {
		t.Errorf("IngestFrames = %d frames applied, want 4", n)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2 pairwise records", s.Len())
	}
	if got := len(s.Devices()); got != 2 {
		t.Errorf("devices = %d, want 2", got)
	}
	if got := len(s.APs()); got != 3 {
		t.Errorf("aps = %d, want 3 (A1, A2, beacon A3)", got)
	}
	if fp := s.FingerprintOf(mac(1)); len(fp.SSIDs) != 1 || fp.SSIDs[0] != "home" {
		t.Errorf("fingerprint = %v", fp)
	}
}

func TestIngestBatchRecords(t *testing.T) {
	s := NewStoreShards(4)
	recs := []Record{
		{TimeSec: 5, Device: mac(1), AP: mac(0xA1), Kind: KindProbeResponse},
		{TimeSec: 3, Device: mac(2), AP: mac(0xA2), Kind: KindAssociation},
		{TimeSec: 4, Device: mac(1), AP: mac(0xA3), Kind: KindProbeResponse}, // out of order for dev 1
	}
	if n := s.IngestBatch(recs); n != 3 {
		t.Errorf("IngestBatch = %d, want 3", n)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if got := s.APSetWindow(mac(1), 0, 4.5); len(got) != 1 || got[0] != mac(0xA3) {
		t.Errorf("window = %v, want the out-of-order record visible", got)
	}
	if got := len(s.Devices()); got != 2 {
		t.Errorf("devices = %d, want 2 (records mark devices seen)", got)
	}
	if got := len(s.APs()); got != 3 {
		t.Errorf("aps = %d, want 3 (records register APs)", got)
	}
}

func TestAPSetWindowOutOfOrderIngest(t *testing.T) {
	s := NewStore()
	dev := mac(1)
	s.Ingest(50, dot11.NewProbeResponse(mac(0xA2), dev, "", 1, 1), true)
	s.Ingest(10, dot11.NewProbeResponse(mac(0xA1), dev, "", 6, 2), true) // late arrival
	s.Ingest(90, dot11.NewProbeResponse(mac(0xA3), dev, "", 11, 3), true)

	if got := s.APSetWindow(dev, 0, 20); len(got) != 1 || got[0] != mac(0xA1) {
		t.Fatalf("window [0,20) = %v", got)
	}
	if got := s.APSetWindow(dev, 40, 100); len(got) != 2 ||
		got[0] != mac(0xA2) || got[1] != mac(0xA3) {
		t.Fatalf("window [40,100) = %v", got)
	}
	// Another late arrival after the index was re-sorted.
	s.Ingest(15, dot11.NewProbeResponse(mac(0xA4), dev, "", 1, 4), true)
	if got := s.APSetWindow(dev, 0, 20); len(got) != 2 {
		t.Fatalf("window after second late arrival = %v", got)
	}
}
