package obs

import "repro/internal/telemetry"

// Process-wide observation-store metrics. All stores in the process share
// these series; they answer the operational questions the store itself
// can't — is ingest keeping up, are captures arriving out of order (each
// one forces a re-sort on the next window query), and what a window query
// costs on the hot localization path.
var (
	mRecords = telemetry.Default().Counter(
		"marauder_obs_records_total",
		"Pairwise device-AP observation records appended.", nil)
	mOutOfOrder = telemetry.Default().Counter(
		"marauder_obs_out_of_order_total",
		"Records that arrived behind their device log's tail, marking it for re-sort.", nil)
	mResorts = telemetry.Default().Counter(
		"marauder_obs_resorts_total",
		"Device logs re-sorted by a window query after out-of-order ingest.", nil)
	mWindowSeconds = telemetry.Default().Histogram(
		"marauder_obs_window_query_seconds",
		"Latency of one Γ window query (AppendAPSetWindow).", telemetry.LatencyBuckets(), nil)
)
