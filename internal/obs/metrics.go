package obs

import (
	"strconv"

	"repro/internal/telemetry"
)

// Process-wide observation-store metrics. All stores in the process share
// these series; they answer the operational questions the store itself
// can't — is ingest keeping up, are captures arriving out of order (each
// one forces a re-sort on the next window query), how large the ingest
// batches actually are, whether the MAC hash balances the shards, and
// what a window query costs on the hot localization path.
var (
	mRecords = telemetry.Default().Counter(
		"marauder_obs_records_total",
		"Pairwise device-AP observation records appended.", nil)
	mOutOfOrder = telemetry.Default().Counter(
		"marauder_obs_out_of_order_total",
		"Records that arrived behind their device log's tail, marking it for re-sort.", nil)
	mResorts = telemetry.Default().Counter(
		"marauder_obs_resorts_total",
		"Device logs re-sorted by a window query after out-of-order ingest.", nil)
	mWindowSeconds = telemetry.Default().Histogram(
		"marauder_obs_window_query_seconds",
		"Latency of one Γ window query (AppendAPSetWindow).", telemetry.LatencyBuckets(), nil)
	mBatchFrames = telemetry.Default().Histogram(
		"marauder_obs_ingest_batch_size",
		"Items per batched ingest call (IngestFrames / IngestBatch).",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}, nil)
	mIngestSeconds = telemetry.Default().Histogram(
		"marauder_obs_ingest_batch_seconds",
		"Wall time per batched ingest call, shard lock waits included.",
		telemetry.LatencyBuckets(), nil)
	mCkptWrites = telemetry.Default().Counter(
		"marauder_checkpoint_writes_total",
		"Observation checkpoints written successfully.", nil)
	mCkptFailures = telemetry.Default().Counter(
		"marauder_checkpoint_failures_total",
		"Observation checkpoint attempts that failed.", nil)
	mCkptGeneration = telemetry.Default().Gauge(
		"marauder_checkpoint_generation",
		"Generation number of the newest written observation checkpoint.", nil)
)

// shardRecordGauge returns the per-shard record gauge. Like the engine
// gauges, several stores in one process share a series per shard index
// (last writer wins); per-store counts stay available via ShardLens.
func shardRecordGauge(i int) *telemetry.Gauge {
	return telemetry.Default().Gauge(
		"marauder_obs_shard_records",
		"Pairwise records held, by shard index.",
		telemetry.Labels{"shard": strconv.Itoa(i)})
}
