package obs

import (
	"math"
	"testing"

	"repro/internal/dot11"
)

func ingestProbes(s *Store, src dot11.MAC, ssids ...string) {
	for i, ssid := range ssids {
		s.Ingest(float64(i), dot11.NewProbeRequest(src, ssid, uint16(i)), false)
	}
}

func TestFingerprintAccumulation(t *testing.T) {
	s := NewStore()
	dev := mac(1)
	ingestProbes(s, dev, "home-net", "work-net", "home-net", "", "cafe")
	fp := s.FingerprintOf(dev)
	want := []string{"cafe", "home-net", "work-net"}
	if len(fp.SSIDs) != len(want) {
		t.Fatalf("fingerprint = %v", fp.SSIDs)
	}
	for i, ssid := range want {
		if fp.SSIDs[i] != ssid {
			t.Errorf("ssid[%d] = %q, want %q (sorted, deduped, no wildcard)",
				i, fp.SSIDs[i], ssid)
		}
	}
	// Unknown MAC: empty fingerprint.
	if fp := s.FingerprintOf(mac(99)); len(fp.SSIDs) != 0 {
		t.Errorf("unknown fingerprint = %v", fp.SSIDs)
	}
}

func TestJaccard(t *testing.T) {
	a := Fingerprint{SSIDs: []string{"x", "y", "z"}}
	b := Fingerprint{SSIDs: []string{"y", "z", "w"}}
	if got := a.Jaccard(b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("jaccard = %v, want 0.5", got)
	}
	if got := a.Jaccard(a); got != 1 {
		t.Errorf("self jaccard = %v", got)
	}
	if got := a.Jaccard(Fingerprint{}); got != 0 {
		t.Errorf("disjoint jaccard = %v", got)
	}
	// Two wildcard-only devices carry no identifier: similarity 0, not 1.
	if got := (Fingerprint{}).Jaccard(Fingerprint{}); got != 0 {
		t.Errorf("empty-empty jaccard = %v, want 0", got)
	}
}

// The paper's pseudonym scenario: one device rotates through two MACs but
// keeps probing its preferred networks; a third, unrelated device probes
// different networks. LinkPseudonyms must link the first pair only.
func TestLinkPseudonyms(t *testing.T) {
	s := NewStore()
	pseudoA, pseudoB, other := mac(0x10), mac(0x20), mac(0x30)
	ingestProbes(s, pseudoA, "home-net", "work-net", "gym")
	ingestProbes(s, pseudoB, "home-net", "work-net", "gym")
	ingestProbes(s, other, "coffeeshop", "airport")

	links := s.LinkPseudonyms(0.8)
	if len(links) != 1 {
		t.Fatalf("links = %+v", links)
	}
	l := links[0]
	if !(l.A == pseudoA && l.B == pseudoB) {
		t.Errorf("linked %v-%v, want the pseudonym pair", l.A, l.B)
	}
	if l.Similarity != 1 {
		t.Errorf("similarity = %v", l.Similarity)
	}

	// Lower threshold: partial overlaps appear, sorted strongest first.
	ingestProbes(s, mac(0x40), "home-net", "airport")
	all := s.LinkPseudonyms(0.1)
	if len(all) < 2 {
		t.Fatalf("links at low threshold = %+v", all)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Similarity > all[i-1].Similarity {
			t.Fatal("links not sorted by similarity")
		}
	}
}

func TestLinkPseudonymsNoWildcardLinking(t *testing.T) {
	s := NewStore()
	// Devices that only wildcard-probe must never be linked.
	ingestProbes(s, mac(1), "", "")
	ingestProbes(s, mac(2), "", "")
	if links := s.LinkPseudonyms(0.5); len(links) != 0 {
		t.Errorf("wildcard devices linked: %+v", links)
	}
}
