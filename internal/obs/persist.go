package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/dot11"
)

// snapshot is the serialized form of a Store.
type snapshot struct {
	Records []Record             `json:"records"`
	Seen    []seenEntry          `json:"seen"`
	Probing []dot11.MAC          `json:"probing"`
	APs     []dot11.MAC          `json:"aps"`
	SSIDs   []fingerprintEntryJS `json:"ssids,omitempty"`
}

type seenEntry struct {
	MAC   dot11.MAC `json:"mac"`
	First float64   `json:"first"`
}

type fingerprintEntryJS struct {
	MAC   dot11.MAC `json:"mac"`
	SSIDs []string  `json:"ssids"`
}

// lessRecord is the canonical serialization order: time (NaN first), then
// device, AP and kind. Sorting makes Save deterministic and independent of
// the store's shard count and ingest interleaving.
func lessRecord(a, b Record) bool {
	if a.TimeSec != b.TimeSec && (timeLess(a.TimeSec, b.TimeSec) || timeLess(b.TimeSec, a.TimeSec)) {
		return timeLess(a.TimeSec, b.TimeSec)
	}
	if a.Device != b.Device {
		return lessMAC(a.Device, b.Device)
	}
	if a.AP != b.AP {
		return lessMAC(a.AP, b.AP)
	}
	return a.Kind < b.Kind
}

// Save serializes the store as JSON, so an attack session (or a long
// capture) can be persisted and resumed. The output is deterministic:
// identical observation content produces identical bytes regardless of
// shard count or ingest order.
func (s *Store) Save(w io.Writer) error {
	var snap snapshot
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, dl := range sh.byDev {
			snap.Records = append(snap.Records, dl.recs...)
		}
		for m, t := range sh.seen {
			snap.Seen = append(snap.Seen, seenEntry{MAC: m, First: t})
		}
		for m := range sh.probing {
			snap.Probing = append(snap.Probing, m)
		}
		for m := range sh.aps {
			snap.APs = append(snap.APs, m)
		}
		for m, set := range sh.probedSSIDs {
			e := fingerprintEntryJS{MAC: m}
			for ssid := range set {
				e.SSIDs = append(e.SSIDs, ssid)
			}
			sort.Strings(e.SSIDs)
			snap.SSIDs = append(snap.SSIDs, e)
		}
		sh.mu.RUnlock()
	}

	sort.SliceStable(snap.Records, func(i, j int) bool { return lessRecord(snap.Records[i], snap.Records[j]) })
	sort.Slice(snap.Seen, func(i, j int) bool { return lessMAC(snap.Seen[i].MAC, snap.Seen[j].MAC) })
	sortMACs(snap.Probing)
	// APs can be registered in several shards; dedup before sorting.
	snap.APs = dedupMACs(snap.APs)
	sort.Slice(snap.SSIDs, func(i, j int) bool { return lessMAC(snap.SSIDs[i].MAC, snap.SSIDs[j].MAC) })

	enc := json.NewEncoder(w)
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("obs: save: %w", err)
	}
	return nil
}

func dedupMACs(ms []dot11.MAC) []dot11.MAC {
	sortMACs(ms)
	uniq := 0
	for i, m := range ms {
		if i == 0 || m != ms[uniq-1] {
			ms[uniq] = m
			uniq++
		}
	}
	return ms[:uniq]
}

// Load deserializes a store previously written by Save, using the default
// shard count.
func Load(r io.Reader) (*Store, error) {
	return LoadShards(r, DefaultShardCount())
}

// LoadShards deserializes a store previously written by Save into a store
// with the given shard count, so recovered stores can match a -shards
// override. Snapshots with duplicate seen or probing entries are rejected:
// a canonical Save never produces them, so a duplicate means the snapshot
// was corrupted or hand-edited, and silently keeping one of the two
// conflicting entries would hide the damage.
func LoadShards(r io.Reader, shards int) (*Store, error) {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("obs: load: %w", err)
	}
	seenMACs := make(map[dot11.MAC]int, len(snap.Seen))
	for i, e := range snap.Seen {
		if j, dup := seenMACs[e.MAC]; dup {
			return nil, fmt.Errorf("obs: load: duplicate seen entry for %s at index %d (first at index %d)", e.MAC, i, j)
		}
		seenMACs[e.MAC] = i
	}
	probingMACs := make(map[dot11.MAC]int, len(snap.Probing))
	for i, m := range snap.Probing {
		if j, dup := probingMACs[m]; dup {
			return nil, fmt.Errorf("obs: load: duplicate probing entry for %s at index %d (first at index %d)", m, i, j)
		}
		probingMACs[m] = i
	}
	s := NewStoreShards(shards)
	// Rebuild the per-device window indexes shard by shard, without the
	// seen/AP side effects of live ingest: the snapshot's own sets are
	// authoritative and applied below.
	for _, rec := range snap.Records {
		sh := s.shardFor(rec.Device)
		sh.addRecordLocked(rec)
	}
	for _, e := range snap.Seen {
		s.shardFor(e.MAC).seen[e.MAC] = e.First
	}
	for _, m := range snap.Probing {
		s.shardFor(m).probing[m] = true
	}
	for _, m := range snap.APs {
		s.shardFor(m).aps[m] = true
	}
	for _, e := range snap.SSIDs {
		sh := s.shardFor(e.MAC)
		set := make(map[string]bool, len(e.SSIDs))
		for _, ssid := range e.SSIDs {
			set[ssid] = true
		}
		if sh.probedSSIDs == nil {
			sh.probedSSIDs = make(map[dot11.MAC]map[string]bool)
		}
		sh.probedSSIDs[e.MAC] = set
	}
	return s, nil
}
