package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/dot11"
)

// snapshot is the serialized form of a Store.
type snapshot struct {
	Records []Record             `json:"records"`
	Seen    []seenEntry          `json:"seen"`
	Probing []dot11.MAC          `json:"probing"`
	APs     []dot11.MAC          `json:"aps"`
	SSIDs   []fingerprintEntryJS `json:"ssids,omitempty"`
}

type seenEntry struct {
	MAC   dot11.MAC `json:"mac"`
	First float64   `json:"first"`
}

type fingerprintEntryJS struct {
	MAC   dot11.MAC `json:"mac"`
	SSIDs []string  `json:"ssids"`
}

// Save serializes the store as JSON, so an attack session (or a long
// capture) can be persisted and resumed.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	snap := snapshot{Records: append([]Record(nil), s.records...)}
	for m, t := range s.seen {
		snap.Seen = append(snap.Seen, seenEntry{MAC: m, First: t})
	}
	for m := range s.probing {
		snap.Probing = append(snap.Probing, m)
	}
	for m := range s.aps {
		snap.APs = append(snap.APs, m)
	}
	for m, set := range s.fp.probedSSIDs {
		e := fingerprintEntryJS{MAC: m}
		for ssid := range set {
			e.SSIDs = append(e.SSIDs, ssid)
		}
		sort.Strings(e.SSIDs)
		snap.SSIDs = append(snap.SSIDs, e)
	}
	s.mu.RUnlock()

	sort.Slice(snap.Seen, func(i, j int) bool { return lessMAC(snap.Seen[i].MAC, snap.Seen[j].MAC) })
	sortMACs(snap.Probing)
	sortMACs(snap.APs)
	sort.Slice(snap.SSIDs, func(i, j int) bool { return lessMAC(snap.SSIDs[i].MAC, snap.SSIDs[j].MAC) })

	enc := json.NewEncoder(w)
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("obs: save: %w", err)
	}
	return nil
}

// Load deserializes a store previously written by Save.
func Load(r io.Reader) (*Store, error) {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("obs: load: %w", err)
	}
	s := NewStore()
	for _, rec := range snap.Records {
		s.addRecord(rec) // rebuilds the per-device window index too
	}
	for _, e := range snap.Seen {
		s.seen[e.MAC] = e.First
	}
	for _, m := range snap.Probing {
		s.probing[m] = true
	}
	for _, m := range snap.APs {
		s.aps[m] = true
	}
	if len(snap.SSIDs) > 0 {
		s.ensureFingerprints()
		for _, e := range snap.SSIDs {
			set := make(map[string]bool, len(e.SSIDs))
			for _, ssid := range e.SSIDs {
				set[ssid] = true
			}
			s.fp.probedSSIDs[e.MAC] = set
		}
	}
	return s, nil
}
