package obs

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dot11"
)

func populated(t *testing.T, n int) *Store {
	t.Helper()
	s := NewStore()
	for i := 0; i < n; i++ {
		dev, ap := mac(byte(i)), mac(byte(0xA0+i%16))
		s.Ingest(float64(i), dot11.NewProbeRequest(dev, "net", 1), false)
		s.Ingest(float64(i)+0.5, dot11.NewProbeResponse(ap, dev, "x", 6, 2), true)
	}
	return s
}

func saveBytes(t *testing.T, s *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := populated(t, 10)
	path, err := WriteCheckpoint(dir, 7, s)
	if err != nil {
		t.Fatal(err)
	}
	if want := CheckpointPath(dir, 7); path != want {
		t.Errorf("path = %s, want %s", path, want)
	}
	got, meta, err := ReadCheckpoint(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Generation != 7 || meta.Format != checkpointFormat || meta.Records != s.Len() {
		t.Errorf("meta = %+v", meta)
	}
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, s)) {
		t.Error("recovered store's canonical bytes differ from the original")
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s := populated(t, 5)
	path, err := WriteCheckpoint(dir, 1, s)
	if err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	nl := bytes.IndexByte(good, '\n')

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr string
	}{
		{"empty file", func(b []byte) []byte { return nil }, "no header line"},
		{"no newline", func(b []byte) []byte { return b[:nl] }, "no header line"},
		{"garbage header", func(b []byte) []byte {
			return append([]byte("not json\n"), b[nl+1:]...)
		}, "bad header"},
		{"wrong format version", func(b []byte) []byte {
			h := strings.Replace(string(b[:nl]), `"format":1`, `"format":99`, 1)
			return append([]byte(h), b[nl:]...)
		}, "format 99"},
		{"payload bit flip", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[nl+10] ^= 0x01
			return out
		}, "checksum mismatch"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-20] }, "checksum mismatch"},
		{"appended junk", func(b []byte) []byte { return append(append([]byte(nil), b...), "tail"...) }, "checksum mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(dir, "mutated.ckpt")
			if err := os.WriteFile(p, tc.mutate(append([]byte(nil), good...)), 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, err := ReadCheckpoint(p, 0)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestCheckpointRecordCountMismatch(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteCheckpoint(dir, 1, populated(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	nl := bytes.IndexByte(raw, '\n')
	// Lie about the record count; the checksum only covers the payload, so
	// just the count check can catch it.
	payload := raw[nl+1:]
	s2, err := LoadShards(bytes.NewReader(payload), 0)
	if err != nil {
		t.Fatal(err)
	}
	h := strings.Replace(string(raw[:nl]), fmt.Sprintf(`"records":%d`, s2.Len()), `"records":9999`, 1)
	if !strings.Contains(h, "9999") {
		t.Fatalf("could not rewrite record count in header %s", raw[:nl])
	}
	p := filepath.Join(dir, "lied.ckpt")
	if err := os.WriteFile(p, append([]byte(h), raw[nl:]...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadCheckpoint(p, 0); err == nil || !strings.Contains(err.Error(), "header says 9999") {
		t.Fatalf("err = %v, want record-count mismatch", err)
	}
}

func TestRecoverPicksNewestValid(t *testing.T) {
	dir := t.TempDir()
	old := populated(t, 3)
	newer := populated(t, 8)
	if _, err := WriteCheckpoint(dir, 1, old); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteCheckpoint(dir, 2, newer); err != nil {
		t.Fatal(err)
	}
	// Generation 3 exists but is corrupt: Recover must skip it, report it,
	// and land on generation 2.
	if err := os.WriteFile(CheckpointPath(dir, 3), []byte("{}\ncorrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, info, err := Recover(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s == nil {
		t.Fatal("no store recovered")
	}
	if info.Meta.Generation != 2 {
		t.Errorf("recovered generation %d, want 2", info.Meta.Generation)
	}
	if len(info.Skipped) != 1 || !strings.Contains(info.Skipped[0].Path, "checkpoint-0000000000000003") {
		t.Errorf("skipped = %+v, want exactly the corrupt generation 3", info.Skipped)
	}
	if !bytes.Equal(saveBytes(t, s), saveBytes(t, newer)) {
		t.Error("recovered store differs from generation 2's source")
	}
}

func TestRecoverEmptyAndMissingDir(t *testing.T) {
	s, info, err := Recover(filepath.Join(t.TempDir(), "nope"), 0)
	if err != nil || s != nil || info.Path != "" {
		t.Errorf("missing dir: store=%v info=%+v err=%v, want all-zero", s, info, err)
	}
	s, info, err = Recover(t.TempDir(), 0)
	if err != nil || s != nil || info.Path != "" {
		t.Errorf("empty dir: store=%v info=%+v err=%v, want all-zero", s, info, err)
	}
}

func TestCheckpointerPrunesAndNumbers(t *testing.T) {
	dir := t.TempDir()
	s := populated(t, 2)
	c := &Checkpointer{Dir: dir, Keep: 2, Source: func() *Store { return s }}
	c.SetGeneration(10)
	for i := 0; i < 4; i++ {
		if _, err := c.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Generation() != 14 {
		t.Errorf("generation = %d, want 14", c.Generation())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	want := []string{"checkpoint-0000000000000013.ckpt", "checkpoint-0000000000000014.ckpt"}
	if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Errorf("dir holds %v, want %v", names, want)
	}
}

func TestCheckpointerRun(t *testing.T) {
	dir := t.TempDir()
	s := populated(t, 2)
	c := &Checkpointer{Dir: dir, Interval: 5 * time.Millisecond, Source: func() *Store { return s }}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { c.Run(ctx); close(done) }()
	deadline := time.After(2 * time.Second)
	for c.Generation() == 0 {
		select {
		case <-deadline:
			t.Fatal("no checkpoint written within 2s")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	<-done
	if _, _, err := ReadCheckpoint(CheckpointPath(dir, 1), 0); err != nil {
		t.Fatalf("first periodic checkpoint unreadable: %v", err)
	}
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.json")
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("first"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write([]byte("second"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Errorf("content = %q, want %q", got, "second")
	}
	// No leftover temp files.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries, want just the target", len(entries))
	}
}
