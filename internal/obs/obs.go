// Package obs is the observation database of the digital Marauder's map:
// it ingests captured 802.11 management frames and maintains, per mobile
// device, the set Γ of APs the device has been observed communicating with
// — the sole input the paper's localization algorithms need.
//
// It also tracks which devices were seen at all versus seen probing, the
// statistic behind the paper's feasibility experiment (Figs 10-11), and
// answers AP co-observation queries for AP-Rad's linear program.
//
// The store is sharded by device MAC: every device's records, seen/probing
// flags and probe fingerprints live in exactly one shard, each shard owns
// its own lock, and ingest of independent devices proceeds in parallel.
// Single-device queries (APSetWindow and friends) touch one shard;
// cross-device queries (Devices, APs, DeviceAPSets, CoObservationIndex,
// Save) merge per-shard snapshots — each shard's contribution is
// internally consistent, but a concurrent ingest may land between two
// shard reads, exactly as a concurrent ingest could land after an
// unsharded query returned.
package obs

import (
	"log/slog"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/dot11"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// Kind classifies an observation.
type Kind int

// Observation kinds.
const (
	// KindProbeRequest is a device's broadcast scan; it proves the device
	// is present (and probing) but names no AP.
	KindProbeRequest Kind = iota + 1
	// KindProbeResponse is an AP's reply to a device; it proves the
	// device-AP pair is communicable.
	KindProbeResponse
	// KindAssociation is association traffic between a device and its AP.
	KindAssociation
	// KindBeacon is an AP beacon; it proves the AP exists.
	KindBeacon
)

// Record is one pairwise observation between a device and an AP.
type Record struct {
	TimeSec float64   `json:"timeSec"`
	Device  dot11.MAC `json:"device"`
	AP      dot11.MAC `json:"ap"`
	Kind    Kind      `json:"kind"`
}

// FrameCapture is one captured frame queued for batched ingest — the
// (time, frame, AP-attribution) triple Ingest takes, in slice-friendly
// form so a whole capture batch pays each shard lock once.
type FrameCapture struct {
	TimeSec float64
	Frame   *dot11.Frame
	FromAP  bool
}

// Store accumulates observations. It is safe for concurrent use.
type Store struct {
	shards []*shard
	mask   uint32
}

// shard owns every piece of state keyed by one slice of the MAC hash
// space: the per-device record logs, the seen/probing sets, the probe
// fingerprints, and the APs registered through this shard's devices.
type shard struct {
	mu          sync.RWMutex
	nrec        int // pairwise records held (Σ len(byDev[*].recs))
	byDev       map[dot11.MAC]*deviceLog
	seen        map[dot11.MAC]float64 // device -> first seen time
	probing     map[dot11.MAC]bool
	aps         map[dot11.MAC]bool
	probedSSIDs map[dot11.MAC]map[string]bool
	recGauge    *telemetry.Gauge
}

// deviceLog is one device's pairwise records, kept in canonical time order
// (NaN timestamps first, then ascending) so window queries binary-search
// instead of scanning the whole store. Captures almost always arrive in
// time order, so the sort is usually a no-op; an out-of-order ingest just
// clears the flag and the next window query re-sorts once.
type deviceLog struct {
	recs   []Record
	sorted bool
}

// timeLess is the canonical record time order: NaN first, then ascending.
// A plain < comparison is not enough — NaN compares false against
// everything, so a NaN-timestamped record would leave the sorted flag set
// while actually breaking the order, and the binary search would silently
// drop records behind it.
func timeLess(a, b float64) bool {
	return a < b || (math.IsNaN(a) && !math.IsNaN(b))
}

// DefaultShardCount is the shard count NewStore uses: GOMAXPROCS rounded
// up to a power of two, so the MAC-hash masking stays a single AND.
func DefaultShardCount() int {
	n := runtime.GOMAXPROCS(0)
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewStore creates an empty Store with DefaultShardCount shards.
func NewStore() *Store {
	return NewStoreShards(0)
}

// NewStoreShards creates an empty Store with the given shard count,
// rounded up to a power of two; n <= 0 means DefaultShardCount. One shard
// reproduces the unsharded store: a single lock serializing everything.
func NewStoreShards(n int) *Store {
	if n <= 0 {
		n = DefaultShardCount()
	}
	p := 1
	for p < n {
		p <<= 1
	}
	s := &Store{shards: make([]*shard, p), mask: uint32(p - 1)}
	for i := range s.shards {
		s.shards[i] = &shard{
			byDev:    make(map[dot11.MAC]*deviceLog),
			seen:     make(map[dot11.MAC]float64),
			probing:  make(map[dot11.MAC]bool),
			aps:      make(map[dot11.MAC]bool),
			recGauge: shardRecordGauge(i),
		}
	}
	return s
}

// ShardCount returns the number of shards.
func (s *Store) ShardCount() int { return len(s.shards) }

// shardIndex hashes a MAC (FNV-1a) onto a shard.
func (s *Store) shardIndex(m dot11.MAC) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, b := range m {
		h ^= uint32(b)
		h *= prime32
	}
	return h & s.mask
}

func (s *Store) shardFor(m dot11.MAC) *shard { return s.shards[s.shardIndex(m)] }

// addRecordLocked appends one pairwise record to the device index. Caller
// holds the shard write lock.
func (sh *shard) addRecordLocked(r Record) {
	dl := sh.byDev[r.Device]
	if dl == nil {
		dl = &deviceLog{sorted: true}
		sh.byDev[r.Device] = dl
	}
	if n := len(dl.recs); n > 0 && timeLess(r.TimeSec, dl.recs[n-1].TimeSec) {
		dl.sorted = false
		mOutOfOrder.Inc()
	}
	dl.recs = append(dl.recs, r)
	sh.nrec++
	mRecords.Inc()
}

func (sh *shard) markSeenLocked(dev dot11.MAC, timeSec float64) {
	if _, ok := sh.seen[dev]; !ok {
		sh.seen[dev] = timeSec
	}
}

// frameOwner classifies a frame and returns the MAC whose shard owns all
// of the frame's state mutations; ok is false for frames that are no-ops
// (non-management, unknown subtypes, untrusted beacons).
func frameOwner(f *dot11.Frame, fromAP bool) (dot11.MAC, bool) {
	if f == nil || f.Type != dot11.TypeManagement {
		return dot11.MAC{}, false
	}
	switch f.Subtype {
	case dot11.SubtypeProbeRequest:
		return f.Addr2, true
	case dot11.SubtypeProbeResp:
		return f.Addr1, true
	case dot11.SubtypeAssocReq:
		return f.Addr2, true
	case dot11.SubtypeBeacon:
		return f.Addr2, fromAP
	}
	return dot11.MAC{}, false
}

// applyFrameLocked applies one classified frame's state changes. Caller
// holds the shard write lock; the shard must be the frameOwner's.
func (sh *shard) applyFrameLocked(timeSec float64, f *dot11.Frame, fromAP bool) {
	switch f.Subtype {
	case dot11.SubtypeProbeRequest:
		sh.markSeenLocked(f.Addr2, timeSec)
		sh.probing[f.Addr2] = true
		if ssid, ok := f.SSID(); ok {
			sh.recordProbeSSIDLocked(f.Addr2, ssid)
		}
	case dot11.SubtypeProbeResp:
		sh.markSeenLocked(f.Addr1, timeSec)
		sh.aps[f.Addr2] = true
		sh.addRecordLocked(Record{
			TimeSec: timeSec, Device: f.Addr1, AP: f.Addr2, Kind: KindProbeResponse,
		})
	case dot11.SubtypeAssocReq:
		sh.markSeenLocked(f.Addr2, timeSec)
		sh.aps[f.Addr1] = true
		sh.addRecordLocked(Record{
			TimeSec: timeSec, Device: f.Addr2, AP: f.Addr1, Kind: KindAssociation,
		})
	case dot11.SubtypeBeacon:
		if fromAP {
			sh.aps[f.Addr2] = true
		}
	}
}

// Ingest classifies one captured frame. fromAP tells whether the capture
// pipeline attributed the frame to an AP transmitter.
func (s *Store) Ingest(timeSec float64, f *dot11.Frame, fromAP bool) {
	owner, ok := frameOwner(f, fromAP)
	if !ok {
		return
	}
	sh := s.shardFor(owner)
	sh.mu.Lock()
	sh.applyFrameLocked(timeSec, f, fromAP)
	sh.recGauge.Set(float64(sh.nrec))
	sh.mu.Unlock()
}

// IngestFrames is the batched form of Ingest: the batch is grouped by
// shard and each shard's lock is taken once, so a pcap replay or a
// simulated capture burst stops paying one lock round-trip per frame.
// It returns how many frames changed store state.
func (s *Store) IngestFrames(batch []FrameCapture) int {
	if len(batch) == 0 {
		return 0
	}
	defer mIngestSeconds.ObserveSince(time.Now())
	mBatchFrames.Observe(float64(len(batch)))
	if len(s.shards) == 1 {
		sh := s.shards[0]
		n := 0
		sh.mu.Lock()
		for _, c := range batch {
			if _, ok := frameOwner(c.Frame, c.FromAP); ok {
				sh.applyFrameLocked(c.TimeSec, c.Frame, c.FromAP)
				n++
			}
		}
		sh.recGauge.Set(float64(sh.nrec))
		sh.mu.Unlock()
		return n
	}
	shardOf := make([]int32, len(batch))
	counts := make([]int32, len(s.shards))
	n := 0
	for i, c := range batch {
		owner, ok := frameOwner(c.Frame, c.FromAP)
		if !ok {
			shardOf[i] = -1
			continue
		}
		si := int32(s.shardIndex(owner))
		shardOf[i] = si
		counts[si]++
		n++
	}
	buckets := make([][]int32, len(s.shards))
	for si, c := range counts {
		if c > 0 {
			buckets[si] = make([]int32, 0, c)
		}
	}
	for i, si := range shardOf {
		if si >= 0 {
			buckets[si] = append(buckets[si], int32(i))
		}
	}
	for si, idx := range buckets {
		if len(idx) == 0 {
			continue
		}
		sh := s.shards[si]
		sh.mu.Lock()
		for _, i := range idx {
			c := batch[i]
			sh.applyFrameLocked(c.TimeSec, c.Frame, c.FromAP)
		}
		sh.recGauge.Set(float64(sh.nrec))
		sh.mu.Unlock()
	}
	return n
}

// IngestBatch appends pre-classified pairwise records in bulk, grouped by
// device shard with each shard lock taken once. Every record is appended
// verbatim — Len grows by exactly len(recs) — and, like the frame paths
// that produce records, the device is marked seen and the AP registered.
// It returns len(recs).
func (s *Store) IngestBatch(recs []Record) int {
	if len(recs) == 0 {
		return 0
	}
	defer mIngestSeconds.ObserveSince(time.Now())
	mBatchFrames.Observe(float64(len(recs)))
	for si, sh := range s.shards {
		first := true
		for _, r := range recs {
			if s.shardIndex(r.Device) != uint32(si) {
				continue
			}
			if first {
				sh.mu.Lock()
				first = false
			}
			sh.markSeenLocked(r.Device, r.TimeSec)
			sh.aps[r.AP] = true
			sh.addRecordLocked(r)
		}
		if !first {
			sh.recGauge.Set(float64(sh.nrec))
			sh.mu.Unlock()
		}
	}
	return len(recs)
}

// Len returns the number of pairwise records.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.nrec
		sh.mu.RUnlock()
	}
	return n
}

// ShardLens returns the pairwise record count per shard, for operational
// introspection of the hash balance.
func (s *Store) ShardLens() []int {
	out := make([]int, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.RLock()
		out[i] = sh.nrec
		sh.mu.RUnlock()
	}
	return out
}

// Devices returns every device ever seen, sorted by address. A device
// lives in exactly one shard, so the merge needs no dedup.
func (s *Store) Devices() []dot11.MAC {
	var out []dot11.MAC
	for _, sh := range s.shards {
		sh.mu.RLock()
		for m := range sh.seen {
			out = append(out, m)
		}
		sh.mu.RUnlock()
	}
	sortMACs(out)
	return out
}

// ProbingDevices returns the devices observed sending probe requests.
func (s *Store) ProbingDevices() []dot11.MAC {
	var out []dot11.MAC
	for _, sh := range s.shards {
		sh.mu.RLock()
		for m := range sh.probing {
			out = append(out, m)
		}
		sh.mu.RUnlock()
	}
	sortMACs(out)
	return out
}

// APs returns every AP ever observed, sorted by address. An AP is
// registered in the shard of whichever device heard it, so the union
// dedups across shards.
func (s *Store) APs() []dot11.MAC {
	set := make(map[dot11.MAC]bool)
	for _, sh := range s.shards {
		sh.mu.RLock()
		for m := range sh.aps {
			set[m] = true
		}
		sh.mu.RUnlock()
	}
	out := make([]dot11.MAC, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sortMACs(out)
	return out
}

// APSet returns Γ, the set of APs the device has communicated with over the
// whole observation history, sorted by address.
func (s *Store) APSet(dev dot11.MAC) []dot11.MAC {
	return s.APSetWindow(dev, 0, maxFloat)
}

const maxFloat = 1.797693134862315708145274237317043567981e308

// APSetWindow returns Γ restricted to observations with start ≤ t < end —
// the per-position observation when tracking a moving device. The result
// is deduplicated and in ascending MAC order (deterministic across calls
// and store layouts).
func (s *Store) APSetWindow(dev dot11.MAC, start, end float64) []dot11.MAC {
	return s.AppendAPSetWindow(nil, dev, start, end)
}

// AppendAPSetWindow appends the window's Γ to dst and returns the extended
// slice, in the same deduplicated ascending-MAC order as APSetWindow. It
// is the allocation-friendly form for hot loops: pass dst[:0] of a reused
// buffer and no per-call allocation happens once the buffer has grown.
//
// The query binary-searches the device's time-sorted record log rather
// than scanning the whole store. When out-of-order ingest has dirtied the
// log, the re-sort and the search happen under one shard write lock, so a
// record ingested before the query began is always in the result — there
// is no window in which the re-sort can hide it.
func (s *Store) AppendAPSetWindow(dst []dot11.MAC, dev dot11.MAC, start, end float64) []dot11.MAC {
	dst, _, _ = s.appendAPSetWindow(dst, dev, start, end)
	return dst
}

// AppendAPSetWindowTrace is AppendAPSetWindow with the query annotated
// onto an open trace span: how many records the window matched, the
// deduplicated |Γ|, and whether out-of-order ingest forced a re-sort of
// the device log under the query. sp may be nil (nothing is annotated).
func (s *Store) AppendAPSetWindowTrace(dst []dot11.MAC, dev dot11.MAC, start, end float64, sp *trace.SpanHandle) []dot11.MAC {
	base := len(dst)
	dst, scanned, resorted := s.appendAPSetWindow(dst, dev, start, end)
	if sp != nil {
		sp.Attr("records", scanned).Attr("gamma", len(dst)-base)
		if resorted {
			sp.Attr("resorted", true)
		}
	}
	return dst
}

// appendAPSetWindow answers the window query and reports how many records
// the window matched (before AP deduplication) and whether it re-sorted
// the device log.
func (s *Store) appendAPSetWindow(dst []dot11.MAC, dev dot11.MAC, start, end float64) (out []dot11.MAC, scanned int, resorted bool) {
	defer mWindowSeconds.ObserveSince(time.Now())
	sh := s.shardFor(dev)
	base := len(dst)
	sh.mu.RLock()
	dl := sh.byDev[dev]
	if dl == nil {
		sh.mu.RUnlock()
		return dst, 0, false
	}
	if dl.sorted {
		dst = appendWindow(dst, dl.recs, start, end)
		sh.mu.RUnlock()
	} else {
		sh.mu.RUnlock()
		sh.mu.Lock()
		if dl = sh.byDev[dev]; dl != nil {
			sh.sortDeviceLogLocked(dev, dl)
			dst = appendWindow(dst, dl.recs, start, end)
			resorted = true
		}
		sh.mu.Unlock()
	}
	scanned = len(dst) - base
	gamma := dst[base:]
	sortMACs(gamma)
	// Compact duplicates in place.
	uniq := 0
	for i, m := range gamma {
		if i == 0 || m != gamma[uniq-1] {
			gamma[uniq] = m
			uniq++
		}
	}
	return dst[:base+uniq], scanned, resorted
}

// appendWindow appends the APs of the records with start ≤ t < end from a
// canonically ordered log. NaN-timestamped records sort to the front and
// match no window (NaN ≥ start is false for every start).
func appendWindow(dst []dot11.MAC, recs []Record, start, end float64) []dot11.MAC {
	lo := sort.Search(len(recs), func(i int) bool { return recs[i].TimeSec >= start })
	hi := lo + sort.Search(len(recs)-lo, func(i int) bool { return recs[lo+i].TimeSec >= end })
	for _, r := range recs[lo:hi] {
		dst = append(dst, r.AP)
	}
	return dst
}

// sortDeviceLogLocked restores a device log's canonical time order after
// out-of-order ingest. Caller holds the shard write lock.
func (sh *shard) sortDeviceLogLocked(dev dot11.MAC, dl *deviceLog) {
	if dl.sorted {
		return
	}
	sort.SliceStable(dl.recs, func(i, j int) bool {
		return timeLess(dl.recs[i].TimeSec, dl.recs[j].TimeSec)
	})
	dl.sorted = true
	mResorts.Inc()
	slog.Debug("re-sorted device log after out-of-order ingest",
		"component", "obs", "device", dev.String(), "records", len(dl.recs))
}

// DeviceAPSets returns Γ_k for every device with at least one pairwise
// record, over the whole history.
func (s *Store) DeviceAPSets() map[dot11.MAC][]dot11.MAC {
	out := make(map[dot11.MAC][]dot11.MAC)
	for _, sh := range s.shards {
		sh.mu.RLock()
		for dev, dl := range sh.byDev {
			set := make(map[dot11.MAC]bool, len(dl.recs))
			for _, r := range dl.recs {
				set[r.AP] = true
			}
			l := make([]dot11.MAC, 0, len(set))
			for m := range set {
				l = append(l, m)
			}
			sortMACs(l)
			out[dev] = l
		}
		sh.mu.RUnlock()
	}
	return out
}

// CoObserved reports whether some device observed both APs within
// windowSec of each other — the evidence for AP-Rad's r_i + r_j ≥ d_ij
// constraint.
func (s *Store) CoObserved(ap1, ap2 dot11.MAC, windowSec float64) bool {
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, dl := range sh.byDev {
			if deviceCoObservesLocked(dl.recs, ap1, ap2, windowSec) {
				sh.mu.RUnlock()
				return true
			}
		}
		sh.mu.RUnlock()
	}
	return false
}

// deviceCoObservesLocked reports whether one device's log places both APs
// within windowSec of each other. The same-AP case degenerates to "was
// this AP observed at all" (a record co-observes with itself at Δt = 0).
func deviceCoObservesLocked(recs []Record, ap1, ap2 dot11.MAC, windowSec float64) bool {
	if ap1 == ap2 {
		for _, r := range recs {
			if r.AP == ap1 {
				return true
			}
		}
		return false
	}
	for _, r1 := range recs {
		if r1.AP != ap1 {
			continue
		}
		for _, r2 := range recs {
			if r2.AP == ap2 && absf(r1.TimeSec-r2.TimeSec) <= windowSec {
				return true
			}
		}
	}
	return false
}

// CoObservationIndex returns, for every device, the list of (time, AP)
// pairs — a compact form the AP-Rad constraint builder iterates once
// instead of calling CoObserved per pair. Each device's records come back
// in that device's ingest order (canonical time order once a window query
// has re-sorted the log).
func (s *Store) CoObservationIndex() map[dot11.MAC][]Record {
	out := make(map[dot11.MAC][]Record)
	for _, sh := range s.shards {
		sh.mu.RLock()
		for dev, dl := range sh.byDev {
			out[dev] = append([]Record(nil), dl.recs...)
		}
		sh.mu.RUnlock()
	}
	return out
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// sortMACs sorts in place without allocating: sort.Slice's interface
// boxing and reflect swapper cost three heap allocations per call, which
// is the difference between a zero-alloc and a three-alloc window query
// on the tracked-fix hot path. Window Γs are small, so insertion sort
// covers the common case; larger slices take an in-place heapsort.
func sortMACs(ms []dot11.MAC) {
	if len(ms) <= 32 {
		for i := 1; i < len(ms); i++ {
			for j := i; j > 0 && macLess(ms[j], ms[j-1]); j-- {
				ms[j], ms[j-1] = ms[j-1], ms[j]
			}
		}
		return
	}
	// Heapsort: build a max-heap, then repeatedly swap the root out.
	for i := len(ms)/2 - 1; i >= 0; i-- {
		siftDownMACs(ms, i, len(ms))
	}
	for end := len(ms) - 1; end > 0; end-- {
		ms[0], ms[end] = ms[end], ms[0]
		siftDownMACs(ms, 0, end)
	}
}

func siftDownMACs(ms []dot11.MAC, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && macLess(ms[child], ms[child+1]) {
			child++
		}
		if !macLess(ms[root], ms[child]) {
			return
		}
		ms[root], ms[child] = ms[child], ms[root]
		root = child
	}
}

func macLess(a, b dot11.MAC) bool {
	for k := 0; k < 6; k++ {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}
