// Package obs is the observation database of the digital Marauder's map:
// it ingests captured 802.11 management frames and maintains, per mobile
// device, the set Γ of APs the device has been observed communicating with
// — the sole input the paper's localization algorithms need.
//
// It also tracks which devices were seen at all versus seen probing, the
// statistic behind the paper's feasibility experiment (Figs 10-11), and
// answers AP co-observation queries for AP-Rad's linear program.
package obs

import (
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/dot11"
)

// Kind classifies an observation.
type Kind int

// Observation kinds.
const (
	// KindProbeRequest is a device's broadcast scan; it proves the device
	// is present (and probing) but names no AP.
	KindProbeRequest Kind = iota + 1
	// KindProbeResponse is an AP's reply to a device; it proves the
	// device-AP pair is communicable.
	KindProbeResponse
	// KindAssociation is association traffic between a device and its AP.
	KindAssociation
	// KindBeacon is an AP beacon; it proves the AP exists.
	KindBeacon
)

// Record is one pairwise observation between a device and an AP.
type Record struct {
	TimeSec float64   `json:"timeSec"`
	Device  dot11.MAC `json:"device"`
	AP      dot11.MAC `json:"ap"`
	Kind    Kind      `json:"kind"`
}

// Store accumulates observations. It is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	records []Record
	byDev   map[dot11.MAC]*deviceLog // per-device window index
	seen    map[dot11.MAC]float64    // device -> first seen time
	probing map[dot11.MAC]bool
	aps     map[dot11.MAC]bool
	fp      fingerprintStore
}

// deviceLog is one device's pairwise records, kept sorted by time so
// window queries binary-search instead of scanning the whole store.
// Captures almost always arrive in time order, so the sort is usually a
// no-op; an out-of-order ingest just clears the flag and the next window
// query re-sorts once.
type deviceLog struct {
	recs   []Record
	sorted bool
}

// NewStore creates an empty Store.
func NewStore() *Store {
	return &Store{
		byDev:   make(map[dot11.MAC]*deviceLog),
		seen:    make(map[dot11.MAC]float64),
		probing: make(map[dot11.MAC]bool),
		aps:     make(map[dot11.MAC]bool),
	}
}

// addRecord appends one pairwise record to the flat log and the device
// index. Caller holds the write lock.
func (s *Store) addRecord(r Record) {
	s.records = append(s.records, r)
	dl := s.byDev[r.Device]
	if dl == nil {
		dl = &deviceLog{sorted: true}
		s.byDev[r.Device] = dl
	}
	if n := len(dl.recs); n > 0 && r.TimeSec < dl.recs[n-1].TimeSec {
		dl.sorted = false
		mOutOfOrder.Inc()
	}
	dl.recs = append(dl.recs, r)
	mRecords.Inc()
}

// Ingest classifies one captured frame. fromAP tells whether the capture
// pipeline attributed the frame to an AP transmitter.
func (s *Store) Ingest(timeSec float64, f *dot11.Frame, fromAP bool) {
	if f == nil || f.Type != dot11.TypeManagement {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	markSeen := func(dev dot11.MAC) {
		if _, ok := s.seen[dev]; !ok {
			s.seen[dev] = timeSec
		}
	}
	switch f.Subtype {
	case dot11.SubtypeProbeRequest:
		markSeen(f.Addr2)
		s.probing[f.Addr2] = true
		if ssid, ok := f.SSID(); ok {
			s.recordProbeSSID(f.Addr2, ssid)
		}
	case dot11.SubtypeProbeResp:
		markSeen(f.Addr1)
		s.aps[f.Addr2] = true
		s.addRecord(Record{
			TimeSec: timeSec, Device: f.Addr1, AP: f.Addr2, Kind: KindProbeResponse,
		})
	case dot11.SubtypeAssocReq:
		markSeen(f.Addr2)
		s.aps[f.Addr1] = true
		s.addRecord(Record{
			TimeSec: timeSec, Device: f.Addr2, AP: f.Addr1, Kind: KindAssociation,
		})
	case dot11.SubtypeBeacon:
		if fromAP {
			s.aps[f.Addr2] = true
		}
	}
}

// Len returns the number of pairwise records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// Devices returns every device ever seen, sorted by address.
func (s *Store) Devices() []dot11.MAC {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]dot11.MAC, 0, len(s.seen))
	for m := range s.seen {
		out = append(out, m)
	}
	sortMACs(out)
	return out
}

// ProbingDevices returns the devices observed sending probe requests.
func (s *Store) ProbingDevices() []dot11.MAC {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]dot11.MAC, 0, len(s.probing))
	for m := range s.probing {
		out = append(out, m)
	}
	sortMACs(out)
	return out
}

// APs returns every AP ever observed, sorted by address.
func (s *Store) APs() []dot11.MAC {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]dot11.MAC, 0, len(s.aps))
	for m := range s.aps {
		out = append(out, m)
	}
	sortMACs(out)
	return out
}

// APSet returns Γ, the set of APs the device has communicated with over the
// whole observation history, sorted by address.
func (s *Store) APSet(dev dot11.MAC) []dot11.MAC {
	return s.APSetWindow(dev, 0, maxFloat)
}

const maxFloat = 1.797693134862315708145274237317043567981e308

// APSetWindow returns Γ restricted to observations with start ≤ t < end —
// the per-position observation when tracking a moving device. The result
// is deduplicated and in ascending MAC order (deterministic across calls
// and store layouts).
func (s *Store) APSetWindow(dev dot11.MAC, start, end float64) []dot11.MAC {
	return s.AppendAPSetWindow(nil, dev, start, end)
}

// AppendAPSetWindow appends the window's Γ to dst and returns the extended
// slice, in the same deduplicated ascending-MAC order as APSetWindow. It
// is the allocation-friendly form for hot loops: pass dst[:0] of a reused
// buffer and no per-call allocation happens once the buffer has grown.
// The query binary-searches the device's time-sorted record log rather
// than scanning the whole store.
func (s *Store) AppendAPSetWindow(dst []dot11.MAC, dev dot11.MAC, start, end float64) []dot11.MAC {
	defer mWindowSeconds.ObserveSince(time.Now())
	s.sortDeviceLog(dev)
	s.mu.RLock()
	dl := s.byDev[dev]
	if dl == nil {
		s.mu.RUnlock()
		return dst
	}
	base := len(dst)
	recs := dl.recs
	if dl.sorted {
		lo := sort.Search(len(recs), func(i int) bool { return recs[i].TimeSec >= start })
		hi := lo + sort.Search(len(recs)-lo, func(i int) bool { return recs[lo+i].TimeSec >= end })
		for _, r := range recs[lo:hi] {
			dst = append(dst, r.AP)
		}
	} else {
		// An out-of-order ingest slipped in between sortDeviceLog and the
		// read lock; fall back to a linear scan of this device's log.
		for _, r := range recs {
			if r.TimeSec >= start && r.TimeSec < end {
				dst = append(dst, r.AP)
			}
		}
	}
	s.mu.RUnlock()
	gamma := dst[base:]
	sortMACs(gamma)
	// Compact duplicates in place.
	uniq := 0
	for i, m := range gamma {
		if i == 0 || m != gamma[uniq-1] {
			gamma[uniq] = m
			uniq++
		}
	}
	return dst[:base+uniq]
}

// sortDeviceLog restores a device log's time order after out-of-order
// ingest, taking the write lock only when needed.
func (s *Store) sortDeviceLog(dev dot11.MAC) {
	s.mu.RLock()
	dl := s.byDev[dev]
	clean := dl == nil || dl.sorted
	s.mu.RUnlock()
	if clean {
		return
	}
	s.mu.Lock()
	if dl := s.byDev[dev]; dl != nil && !dl.sorted {
		sort.SliceStable(dl.recs, func(i, j int) bool {
			return dl.recs[i].TimeSec < dl.recs[j].TimeSec
		})
		dl.sorted = true
		mResorts.Inc()
		slog.Debug("re-sorted device log after out-of-order ingest",
			"component", "obs", "device", dev.String(), "records", len(dl.recs))
	}
	s.mu.Unlock()
}

// DeviceAPSets returns Γ_k for every device with at least one pairwise
// record, over the whole history.
func (s *Store) DeviceAPSets() map[dot11.MAC][]dot11.MAC {
	s.mu.RLock()
	records := append([]Record(nil), s.records...)
	s.mu.RUnlock()
	sets := make(map[dot11.MAC]map[dot11.MAC]bool)
	for _, r := range records {
		if sets[r.Device] == nil {
			sets[r.Device] = make(map[dot11.MAC]bool)
		}
		sets[r.Device][r.AP] = true
	}
	out := make(map[dot11.MAC][]dot11.MAC, len(sets))
	for dev, set := range sets {
		l := make([]dot11.MAC, 0, len(set))
		for m := range set {
			l = append(l, m)
		}
		sortMACs(l)
		out[dev] = l
	}
	return out
}

// CoObserved reports whether some device observed both APs within
// windowSec of each other — the evidence for AP-Rad's r_i + r_j ≥ d_ij
// constraint.
func (s *Store) CoObserved(ap1, ap2 dot11.MAC, windowSec float64) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, r1 := range s.records {
		if r1.AP != ap1 {
			continue
		}
		for _, r2 := range s.records {
			if r2.AP != ap2 && ap1 != ap2 {
				continue
			}
			if r2.AP == ap2 && r1.Device == r2.Device &&
				absf(r1.TimeSec-r2.TimeSec) <= windowSec {
				return true
			}
		}
	}
	return false
}

// CoObservationIndex returns, for every device, the list of (time, AP)
// pairs — a compact form the AP-Rad constraint builder iterates once
// instead of calling CoObserved per pair.
func (s *Store) CoObservationIndex() map[dot11.MAC][]Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[dot11.MAC][]Record)
	for _, r := range s.records {
		out[r.Device] = append(out[r.Device], r)
	}
	return out
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func sortMACs(ms []dot11.MAC) {
	sort.Slice(ms, func(i, j int) bool {
		for k := 0; k < 6; k++ {
			if ms[i][k] != ms[j][k] {
				return ms[i][k] < ms[j][k]
			}
		}
		return false
	})
}
