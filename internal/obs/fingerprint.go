package obs

import (
	"sort"

	"repro/internal/dot11"
)

// This file implements the paper's pseudonym-defeating extension: "Pang et
// al. demonstrate that many implicit identifiers such as network names in
// probing traffic may break those pseudonyms. Combined with their schemes,
// the digital Marauder's map can also track a victim in case pseudo-MAC
// addresses are used." A device that rotates its MAC still probes for the
// same remembered networks; the multiset of SSIDs it probes for is an
// implicit identifier that links its pseudonyms.

// Fingerprint is the implicit identifier of a device: the set of network
// names it probes for (its preferred-network list leaking on the air).
type Fingerprint struct {
	// SSIDs is the sorted set of non-wildcard SSIDs probed for.
	SSIDs []string `json:"ssids"`
}

// Jaccard returns the Jaccard similarity of two fingerprints' SSID sets
// (1 for identical, 0 for disjoint). Two empty fingerprints score 0: a
// device that only wildcard-probes carries no implicit identifier.
func (f Fingerprint) Jaccard(o Fingerprint) float64 {
	if len(f.SSIDs) == 0 && len(o.SSIDs) == 0 {
		return 0
	}
	set := make(map[string]bool, len(f.SSIDs))
	for _, s := range f.SSIDs {
		set[s] = true
	}
	inter := 0
	for _, s := range o.SSIDs {
		if set[s] {
			inter++
		}
	}
	union := len(f.SSIDs) + len(o.SSIDs) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// recordProbeSSIDLocked notes a directed probe's SSID under the source
// MAC. Caller holds the shard write lock; the shard must be the source
// device's, so a device's whole fingerprint lives in one shard.
func (sh *shard) recordProbeSSIDLocked(src dot11.MAC, ssid string) {
	if ssid == "" {
		return // wildcard probe: no implicit identifier
	}
	if sh.probedSSIDs == nil {
		sh.probedSSIDs = make(map[dot11.MAC]map[string]bool)
	}
	if sh.probedSSIDs[src] == nil {
		sh.probedSSIDs[src] = make(map[string]bool)
	}
	sh.probedSSIDs[src][ssid] = true
}

// FingerprintOf returns the implicit identifier accumulated for a MAC.
func (s *Store) FingerprintOf(mac dot11.MAC) Fingerprint {
	sh := s.shardFor(mac)
	sh.mu.RLock()
	set := sh.probedSSIDs[mac]
	ssids := make([]string, 0, len(set))
	for ssid := range set {
		ssids = append(ssids, ssid)
	}
	sh.mu.RUnlock()
	sort.Strings(ssids)
	return Fingerprint{SSIDs: ssids}
}

// PseudonymLink is one inferred identity link between two MACs that are
// likely the same physical device under different pseudonyms.
type PseudonymLink struct {
	A          dot11.MAC `json:"a"`
	B          dot11.MAC `json:"b"`
	Similarity float64   `json:"similarity"`
}

// LinkPseudonyms compares the fingerprints of every pair of observed MACs
// and returns the pairs whose Jaccard similarity reaches the threshold,
// strongest first — the attack that keeps the Marauder's map working when
// devices randomize their MAC addresses.
func (s *Store) LinkPseudonyms(threshold float64) []PseudonymLink {
	var macs []dot11.MAC
	for _, sh := range s.shards {
		sh.mu.RLock()
		for m := range sh.probedSSIDs {
			macs = append(macs, m)
		}
		sh.mu.RUnlock()
	}
	sortMACs(macs)

	var links []PseudonymLink
	for i := 0; i < len(macs); i++ {
		fi := s.FingerprintOf(macs[i])
		for j := i + 1; j < len(macs); j++ {
			sim := fi.Jaccard(s.FingerprintOf(macs[j]))
			if sim >= threshold {
				links = append(links, PseudonymLink{A: macs[i], B: macs[j], Similarity: sim})
			}
		}
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].Similarity != links[j].Similarity {
			return links[i].Similarity > links[j].Similarity
		}
		return lessMAC(links[i].A, links[j].A)
	})
	return links
}

func lessMAC(a, b dot11.MAC) bool {
	for k := 0; k < 6; k++ {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}
