// Package pcap reads and writes the classic libpcap capture file format
// (the format tcpdump -w produces), which the Marauder's map capture
// pipeline uses to persist sniffed 802.11 traffic. Only the features the
// pipeline needs are implemented: microsecond timestamps, configurable link
// type, and native little-endian byte order with big-endian read support.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// LinkType identifies the capture's layer-2 protocol.
type LinkType uint32

// Link types relevant to 802.11 capture.
const (
	// LinkTypeEthernet is DLT_EN10MB.
	LinkTypeEthernet LinkType = 1
	// LinkTypeIEEE80211 is DLT_IEEE802_11: raw 802.11 headers, the format
	// this pipeline writes.
	LinkTypeIEEE80211 LinkType = 105
)

const (
	magicLE       = 0xa1b2c3d4
	magicBE       = 0xd4c3b2a1
	versionMajor  = 2
	versionMinor  = 4
	globalHdrLen  = 24
	packetHdrLen  = 16
	defaultSnapLn = 65535
)

// Format errors.
var (
	ErrBadMagic    = errors.New("pcap: bad magic number")
	ErrTruncated   = errors.New("pcap: truncated file")
	ErrSnapExceeds = errors.New("pcap: packet exceeds snap length")
)

// Packet is one captured frame.
type Packet struct {
	// Time is the capture timestamp.
	Time time.Time
	// Data is the captured bytes (up to the snap length).
	Data []byte
	// OrigLen is the original frame length on the air.
	OrigLen int
}

// Writer writes a pcap stream.
type Writer struct {
	w       io.Writer
	snapLen uint32
	started bool
	link    LinkType
}

// NewWriter creates a Writer that emits a pcap stream with the given link
// type. The global header is written lazily on the first packet (or by
// Flush-like explicit WriteHeader).
func NewWriter(w io.Writer, link LinkType) *Writer {
	return &Writer{w: w, snapLen: defaultSnapLn, link: link}
}

// WriteHeader writes the global header immediately. It is idempotent.
func (w *Writer) WriteHeader() error {
	if w.started {
		return nil
	}
	var hdr [globalHdrLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicLE)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	// thiszone = 0, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:20], w.snapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(w.link))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: write global header: %w", err)
	}
	w.started = true
	return nil
}

// WritePacket appends one packet record.
func (w *Writer) WritePacket(p Packet) error {
	if len(p.Data) > int(w.snapLen) {
		return ErrSnapExceeds
	}
	if err := w.WriteHeader(); err != nil {
		return err
	}
	orig := p.OrigLen
	if orig < len(p.Data) {
		orig = len(p.Data)
	}
	var hdr [packetHdrLen]byte
	ts := p.Time
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(p.Data)))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(orig))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: write packet header: %w", err)
	}
	if _, err := w.w.Write(p.Data); err != nil {
		return fmt.Errorf("pcap: write packet data: %w", err)
	}
	return nil
}

// Reader reads a pcap stream.
type Reader struct {
	r       io.Reader
	order   binary.ByteOrder
	link    LinkType
	snapLen uint32
}

// NewReader parses the global header and returns a Reader positioned at the
// first packet.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [globalHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: read global header: %w", err)
	}
	var order binary.ByteOrder
	switch binary.LittleEndian.Uint32(hdr[0:4]) {
	case magicLE:
		order = binary.LittleEndian
	case magicBE:
		order = binary.BigEndian
	default:
		return nil, ErrBadMagic
	}
	return &Reader{
		r:       r,
		order:   order,
		snapLen: order.Uint32(hdr[16:20]),
		link:    LinkType(order.Uint32(hdr[20:24])),
	}, nil
}

// LinkType returns the capture's link type.
func (r *Reader) LinkType() LinkType { return r.link }

// SnapLen returns the capture's snapshot length.
func (r *Reader) SnapLen() uint32 { return r.snapLen }

// Next returns the next packet, or io.EOF at end of stream.
func (r *Reader) Next() (Packet, error) {
	var hdr [packetHdrLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, ErrTruncated
	}
	sec := r.order.Uint32(hdr[0:4])
	usec := r.order.Uint32(hdr[4:8])
	capLen := r.order.Uint32(hdr[8:12])
	origLen := r.order.Uint32(hdr[12:16])
	if capLen > r.snapLen {
		return Packet{}, fmt.Errorf("pcap: capture length %d exceeds snap length %d",
			capLen, r.snapLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Packet{}, ErrTruncated
	}
	return Packet{
		Time:    time.Unix(int64(sec), int64(usec)*1000).UTC(),
		Data:    data,
		OrigLen: int(origLen),
	}, nil
}

// ReadAll drains the stream into a slice.
func (r *Reader) ReadAll() ([]Packet, error) {
	var out []Packet
	for {
		p, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}
