package pcap

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// FuzzReader feeds arbitrary bytes to the pcap reader: it must never panic
// and must terminate (every packet consumes input, so EOF or an error is
// always reached).
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeIEEE80211)
	_ = w.WritePacket(Packet{Time: time.Unix(1000, 0), Data: []byte{1, 2, 3}})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xa1}, 48))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			_, err := r.Next()
			if errors.Is(err, io.EOF) || err != nil {
				return
			}
		}
		t.Fatal("reader produced 1000 packets from a fuzz input; likely not consuming input")
	})
}
