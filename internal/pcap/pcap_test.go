package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dot11"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeIEEE80211)
	t0 := time.Date(2008, 10, 24, 12, 0, 0, 123456000, time.UTC)
	pkts := []Packet{
		{Time: t0, Data: []byte{1, 2, 3}},
		{Time: t0.Add(time.Second), Data: []byte{4, 5}, OrigLen: 100},
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeIEEE80211 {
		t.Errorf("link type = %v", r.LinkType())
	}
	if r.SnapLen() != 65535 {
		t.Errorf("snaplen = %v", r.SnapLen())
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d packets", len(got))
	}
	if !got[0].Time.Equal(t0) {
		t.Errorf("time = %v, want %v", got[0].Time, t0)
	}
	if !bytes.Equal(got[0].Data, pkts[0].Data) {
		t.Errorf("data = %v", got[0].Data)
	}
	if got[0].OrigLen != 3 {
		t.Errorf("origlen = %d, want 3 (defaults to caplen)", got[0].OrigLen)
	}
	if got[1].OrigLen != 100 {
		t.Errorf("origlen = %d, want 100", got[1].OrigLen)
	}
}

func TestWriteHeaderIdempotent(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet)
	if err := w.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 24 {
		t.Errorf("header written twice: %d bytes", buf.Len())
	}
}

func TestBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader(make([]byte, 24)))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v", err)
	}
}

func TestShortHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Error("want error for short header")
	}
}

func TestTruncatedPacket(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeIEEE80211)
	if err := w.WritePacket(Packet{Time: time.Now(), Data: []byte{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestSnapLenEnforced(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeIEEE80211)
	if err := w.WritePacket(Packet{Data: make([]byte, 70000)}); !errors.Is(err, ErrSnapExceeds) {
		t.Errorf("err = %v", err)
	}
}

func TestBigEndianRead(t *testing.T) {
	// Hand-build a big-endian capture with one 2-byte packet.
	var buf bytes.Buffer
	hdr := make([]byte, 24)
	binary.BigEndian.PutUint32(hdr[0:4], 0xa1b2c3d4)
	binary.BigEndian.PutUint16(hdr[4:6], 2)
	binary.BigEndian.PutUint16(hdr[6:8], 4)
	binary.BigEndian.PutUint32(hdr[16:20], 65535)
	binary.BigEndian.PutUint32(hdr[20:24], uint32(LinkTypeIEEE80211))
	buf.Write(hdr)
	ph := make([]byte, 16)
	binary.BigEndian.PutUint32(ph[0:4], 1000)
	binary.BigEndian.PutUint32(ph[4:8], 500)
	binary.BigEndian.PutUint32(ph[8:12], 2)
	binary.BigEndian.PutUint32(ph[12:16], 2)
	buf.Write(ph)
	buf.Write([]byte{0xaa, 0xbb})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p.Time.Unix() != 1000 || p.Time.Nanosecond() != 500000 {
		t.Errorf("time = %v", p.Time)
	}
	if !bytes.Equal(p.Data, []byte{0xaa, 0xbb}) {
		t.Errorf("data = %v", p.Data)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want EOF", err)
	}
}

// End-to-end: encode 802.11 frames, persist via pcap, read back, decode.
func TestDot11ThroughPcap(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeIEEE80211)
	ap := dot11.MAC{0, 0x1b, 0x2c, 0, 0, 1}
	frames := []*dot11.Frame{
		dot11.NewBeacon(ap, "net-a", 1, 1, 1),
		dot11.NewProbeRequest(dot11.MAC{2, 0, 0, 0, 0, 9}, "net-a", 2),
		dot11.NewProbeResponse(ap, dot11.MAC{2, 0, 0, 0, 0, 9}, "net-a", 1, 3),
	}
	base := time.Date(2008, 10, 24, 0, 0, 0, 0, time.UTC)
	for i, f := range frames {
		raw, err := f.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WritePacket(Packet{Time: base.Add(time.Duration(i) * time.Millisecond), Data: raw}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 3 {
		t.Fatalf("got %d packets", len(pkts))
	}
	for i, p := range pkts {
		f, err := dot11.Decode(p.Data)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if f.Subtype != frames[i].Subtype {
			t.Errorf("packet %d subtype = %v, want %v", i, f.Subtype, frames[i].Subtype)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(payloads [][]byte, secs uint32) bool {
		if len(payloads) > 20 {
			payloads = payloads[:20]
		}
		var buf bytes.Buffer
		w := NewWriter(&buf, LinkTypeIEEE80211)
		ts := time.Unix(int64(secs%1e9), 0).UTC()
		for _, pl := range payloads {
			if len(pl) > 65535 {
				pl = pl[:65535]
			}
			if err := w.WritePacket(Packet{Time: ts, Data: pl}); err != nil {
				return false
			}
		}
		if err := w.WriteHeader(); err != nil { // ensure header exists even for 0 packets
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.ReadAll()
		if err != nil {
			return false
		}
		if len(got) != len(payloads) {
			return false
		}
		for i := range got {
			pl := payloads[i]
			if len(pl) > 65535 {
				pl = pl[:65535]
			}
			if !bytes.Equal(got[i].Data, pl) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWriteRead(b *testing.B) {
	frame, err := dot11.NewBeacon(dot11.MAC{1}, "bench", 6, 0, 0).Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := NewWriter(&buf, LinkTypeIEEE80211)
		for j := 0; j < 100; j++ {
			if err := w.WritePacket(Packet{Data: frame}); err != nil {
				b.Fatal(err)
			}
		}
		r, err := NewReader(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.ReadAll(); err != nil {
			b.Fatal(err)
		}
	}
}
