package experiments

import (
	"fmt"
	"math"

	"repro/internal/apdb"
	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rf"
	"repro/internal/sim"
	"repro/internal/sniffer"
	"repro/internal/stats"
	"repro/internal/wardrive"
)

// CampusConfig controls the campus localization-accuracy experiment that
// backs Figs 13-17.
type CampusConfig struct {
	// Seed drives every random choice.
	Seed int64
	// NAPs is the number of deployed APs (default 120).
	NAPs int
	// ScanPositions is the number of walk positions the mobile scans from
	// (default 80).
	ScanPositions int
	// MaxRadius is AP-Rad's theoretical upper bound on AP transmission
	// distance (default 200 m; true ranges are 60-140 m).
	MaxRadius float64
}

func (c CampusConfig) withDefaults() CampusConfig {
	if c.NAPs == 0 {
		c.NAPs = 300
	}
	if c.ScanPositions == 0 {
		c.ScanPositions = 100
	}
	if c.MaxRadius == 0 {
		c.MaxRadius = 160
	}
	return c
}

// PositionResult is the outcome of localizing the mobile at one true
// position with each algorithm.
type PositionResult struct {
	Truth geom.Point `json:"truth"`
	// K is the number of communicable APs observed at this position.
	K int `json:"k"`
	// Errors in metres; NaN when the algorithm failed at this position.
	MLocErr     float64 `json:"mlocErr"`
	APRadErr    float64 `json:"apradErr"`
	CentroidErr float64 `json:"centroidErr"`
	// Region areas (m²) of the disc intersections.
	MLocArea  float64 `json:"mlocArea"`
	APRadArea float64 `json:"apradArea"`
	// Region coverage of the true position.
	MLocCovers  bool `json:"mlocCovers"`
	APRadCovers bool `json:"apradCovers"`
}

// CampusRun is the shared state of one campus experiment: the world, the
// attacker's knowledge bases, and per-position results.
type CampusRun struct {
	World *sim.World
	// KnowTrue has true AP locations and radii (the M-Loc setting).
	KnowTrue core.Knowledge
	// KnowEst has true locations with AP-Rad-estimated radii.
	KnowEst core.Knowledge
	// Diag is the AP-Rad radius-estimation diagnostics.
	Diag core.APRadDiagnostics
	// Results holds one entry per scan position with at least one observed
	// AP.
	Results []PositionResult
	// Tuples is the wardriving training set used by Fig 17.
	Tuples []wardrive.Tuple
	// scanGammas are the per-position observed AP sets.
	scanGammas [][]dot11.MAC
	// scanTruths are the matching true positions.
	scanTruths []geom.Point
	cfg        CampusConfig
}

// ScanObservations returns the per-scan-position observed AP sets and the
// matching true positions (positions with empty Γ included, aligned by
// index).
func (r *CampusRun) ScanObservations() ([][]dot11.MAC, []geom.Point) {
	return r.scanGammas, r.scanTruths
}

// worldKnowledge snapshots a world's APs as attacker knowledge.
func worldKnowledge(w *sim.World, includeRange bool) core.Knowledge {
	return core.KnowledgeFromStore(apdb.FromWorld(w, includeRange))
}

// serpentineRoute builds a walk covering the campus interior (staying off
// the deployment edges, where the AP density a device sees drops off).
func serpentineRoute() *sim.RouteWalk {
	var waypoints []geom.Point
	row := 0
	for y := -280.0; y <= 280; y += 80 {
		if row%2 == 0 {
			waypoints = append(waypoints, geom.Pt(-280, y), geom.Pt(280, y))
		} else {
			waypoints = append(waypoints, geom.Pt(280, y), geom.Pt(-280, y))
		}
		row++
	}
	return sim.NewRouteWalk(waypoints, 1.5)
}

// RunCampus executes the full attack pipeline on a synthetic campus: AP
// deployment → a mobile device walking and scanning → LNA sniffer capture
// → observation store → M-Loc / AP-Rad / Centroid localization at every
// scan position.
func RunCampus(cfg CampusConfig) (*CampusRun, error) {
	cfg = cfg.withDefaults()
	w := sim.NewWorld(cfg.Seed)
	// Urban-campus density: ~300 APs over 700×700 m gives a typical scan
	// position 10-20 communicable APs. 60% of APs scatter uniformly and 40%
	// pack into building pockets — the biased distribution real campuses
	// have and the paper's Fig 4 analyses (it is what breaks the Centroid
	// baseline while leaving disc-intersection unharmed).
	uniformN := cfg.NAPs * 6 / 10
	aps, err := sim.UniformDeployment(sim.DeploymentConfig{
		N:        uniformN,
		Min:      geom.Pt(-350, -350),
		Max:      geom.Pt(350, 350),
		RangeMin: 70,
		RangeMax: 130,
	}, w.RNG())
	if err != nil {
		return nil, fmt.Errorf("campus: %w", err)
	}
	clusters := []geom.Point{
		geom.Pt(-180, 140), geom.Pt(160, -120), geom.Pt(40, 230),
		geom.Pt(-120, -220), geom.Pt(230, 170),
	}
	rng := w.RNG()
	for i := uniformN; i < cfg.NAPs; i++ {
		c := clusters[rng.Intn(len(clusters))]
		pos := geom.Pt(c.X+rng.NormFloat64()*40, c.Y+rng.NormFloat64()*40)
		r := 70 + rng.Float64()*60
		ap, err := sim.NewAP(i, fmt.Sprintf("bldg-%04d", i), pos, 6, r)
		if err != nil {
			return nil, fmt.Errorf("campus cluster ap: %w", err)
		}
		aps = append(aps, ap)
	}
	w.APs = aps

	route := serpentineRoute()
	// Namespace 0xDD keeps the tracked device's MAC disjoint from the
	// background population's 0xD0 namespace.
	dev := &sim.Device{
		MAC:      sim.NewMAC(0xDD, 1),
		Mobility: route,
		TX:       rf.TypicalMobile,
	}
	w.AddDevice(dev)

	// The walking device scans at evenly spaced times along the route.
	total := route.TotalDuration()
	interval := total / float64(cfg.ScanPositions)
	events := sim.WalkTrace(w, dev, total, interval)

	// A static background population probes too; its bursts enrich the
	// co-observation data AP-Rad's radius estimation feeds on (the paper's
	// sniffer watches every mobile in the covered area, not just the one
	// being walked).
	background := sim.DefaultPopulation(700, geom.Pt(-350, -350), geom.Pt(350, 350), w.RNG())
	for i, bg := range background {
		events = append(events, sim.ScanBurst(w, bg, float64(i), bg.Home, 1)...)
	}

	sn := sniffer.New(sniffer.Config{
		Pos:   geom.Pt(0, 0),
		Chain: rf.ChainLNA(),
		Plan:  dot11.DefaultPlan(),
	})
	store := obs.NewStore()
	for _, c := range sn.CaptureAll(events) {
		store.Ingest(c.TimeSec, c.Frame, c.FromAP)
	}

	run := &CampusRun{
		World:    w,
		KnowTrue: worldKnowledge(w, true),
		cfg:      cfg,
	}

	// Per-position observed AP sets from windows around each burst, which
	// double as the per-burst pseudo-devices feeding AP-Rad's constraints.
	deviceSets := make(map[dot11.MAC][]dot11.MAC, cfg.ScanPositions)
	truths := make([]geom.Point, 0, cfg.ScanPositions)
	for i := 0; i < cfg.ScanPositions; i++ {
		ts := float64(i) * interval
		gamma := store.APSetWindow(dev.MAC, ts-interval/2, ts+interval/2)
		run.scanGammas = append(run.scanGammas, gamma)
		run.scanTruths = append(run.scanTruths, route.PosAt(ts))
		truths = append(truths, route.PosAt(ts))
		if len(gamma) >= 2 {
			deviceSets[sim.NewMAC(0xB0, i)] = gamma
		}
	}

	// Background devices contribute their (single-position) AP sets.
	for _, bg := range background {
		if gamma := store.APSet(bg.MAC); len(gamma) >= 2 {
			deviceSets[bg.MAC] = gamma
		}
	}

	knowLoc := worldKnowledge(w, false)
	knowEst, diag, err := core.EstimateRadii(knowLoc, deviceSets,
		core.APRadConfig{MaxRadius: cfg.MaxRadius, MaxNeighborConstraints: 12})
	if err != nil {
		return nil, fmt.Errorf("campus ap-rad: %w", err)
	}
	run.KnowEst = knowEst
	run.Diag = diag

	for i, gamma := range run.scanGammas {
		if len(gamma) == 0 {
			continue
		}
		truth := truths[i]
		res := PositionResult{
			Truth:       truth,
			K:           len(gamma),
			MLocErr:     math.NaN(),
			APRadErr:    math.NaN(),
			CentroidErr: math.NaN(),
		}
		if est, err := core.MLoc(run.KnowTrue, gamma); err == nil {
			res.MLocErr = core.Error(est, truth)
		}
		res.MLocArea = core.RegionArea(run.KnowTrue, gamma)
		res.MLocCovers = core.RegionCovers(run.KnowTrue, gamma, truth)
		if est, _, err := core.MLocInflated(run.KnowEst, gamma, 4); err == nil {
			res.APRadErr = core.Error(est, truth)
		}
		res.APRadArea = core.RegionArea(run.KnowEst, gamma)
		res.APRadCovers = core.RegionCovers(run.KnowEst, gamma, truth)
		if est, err := core.CentroidBaseline(run.KnowTrue, gamma); err == nil {
			res.CentroidErr = core.Error(est, truth)
		}
		run.Results = append(run.Results, res)
	}
	if len(run.Results) == 0 {
		return nil, fmt.Errorf("campus: no scan position observed any AP")
	}

	// Wardrive training set for Fig 17: a crosshatch drive (horizontal and
	// vertical passes) like driving a street grid. One-directional routes
	// leave the AP-location estimate symmetric about the route line; the
	// crosshatch breaks that symmetry.
	run.Tuples = wardrive.Collector{World: w}.CollectAlong(crosshatchRoute(), 6)
	return run, nil
}

// crosshatchRoute drives the campus street grid in both directions.
func crosshatchRoute() *sim.RouteWalk {
	var waypoints []geom.Point
	row := 0
	for y := -300.0; y <= 300; y += 100 {
		if row%2 == 0 {
			waypoints = append(waypoints, geom.Pt(-300, y), geom.Pt(300, y))
		} else {
			waypoints = append(waypoints, geom.Pt(300, y), geom.Pt(-300, y))
		}
		row++
	}
	for x := -300.0; x <= 300; x += 100 {
		if row%2 == 0 {
			waypoints = append(waypoints, geom.Pt(x, 300), geom.Pt(x, -300))
		} else {
			waypoints = append(waypoints, geom.Pt(x, -300), geom.Pt(x, 300))
		}
		row++
	}
	return sim.NewRouteWalk(waypoints, 10)
}

func filterValid(errs []float64) []float64 {
	out := errs[:0:0]
	for _, e := range errs {
		if !math.IsNaN(e) {
			out = append(out, e)
		}
	}
	return out
}

// Fig13 renders the localization-error comparison: mean error and a
// histogram for M-Loc, AP-Rad and Centroid.
func Fig13(run *CampusRun) (Table, error) {
	t := Table{
		ID:     "fig13",
		Title:  "Localization error (m): M-Loc vs AP-Rad vs Centroid",
		Header: []string{"bin_m", "mloc", "aprad", "centroid"},
		Notes:  "paper averages: M-Loc 9.41 m, AP-Rad 13.75 m, Centroid 17.28 m",
	}
	var ml, ar, ce []float64
	for _, r := range run.Results {
		ml = append(ml, r.MLocErr)
		ar = append(ar, r.APRadErr)
		ce = append(ce, r.CentroidErr)
	}
	ml, ar, ce = filterValid(ml), filterValid(ar), filterValid(ce)
	if len(ml) == 0 || len(ar) == 0 || len(ce) == 0 {
		return t, fmt.Errorf("fig13: a method produced no estimates")
	}
	maxErr := 0.0
	for _, xs := range [][]float64{ml, ar, ce} {
		for _, x := range xs {
			maxErr = math.Max(maxErr, x)
		}
	}
	bins := 10
	hm, err := stats.NewHistogram(0, maxErr+1, bins)
	if err != nil {
		return t, err
	}
	ha, _ := stats.NewHistogram(0, maxErr+1, bins)
	hc, _ := stats.NewHistogram(0, maxErr+1, bins)
	hm.AddAll(ml)
	ha.AddAll(ar)
	hc.AddAll(ce)
	for i := 0; i < bins; i++ {
		t.AddRow(hm.BinCenter(i), hm.Counts[i], ha.Counts[i], hc.Counts[i])
	}
	t.AddRow("mean", stats.Mean(ml), stats.Mean(ar), stats.Mean(ce))
	return t, nil
}

// errsByK gathers (k, error) pairs for one error selector.
func errsByK(run *CampusRun, sel func(PositionResult) float64) ([]int, []float64) {
	var ks []int
	var es []float64
	for _, r := range run.Results {
		e := sel(r)
		if math.IsNaN(e) {
			continue
		}
		ks = append(ks, r.K)
		es = append(es, e)
	}
	return ks, es
}

// minKSeries computes mean(value | K >= k) for the ks the run observed.
func minKSeries(run *CampusRun, sel func(PositionResult) float64) (map[int]float64, []int, error) {
	ks, es := errsByK(run, sel)
	th, means, err := stats.MeanByMinKey(ks, es)
	if err != nil {
		return nil, nil, err
	}
	m := make(map[int]float64, len(th))
	for i, k := range th {
		m[k] = means[i]
	}
	return m, th, nil
}

// Fig14 renders average error versus the minimum number of communicable
// APs for the three methods.
func Fig14(run *CampusRun) (Table, error) {
	t := Table{
		ID:     "fig14",
		Title:  "Average error (m) vs minimum number of communicable APs",
		Header: []string{"min_k", "mloc", "aprad", "centroid"},
		Notes:  "paper: M-Loc error decreases with k; Centroid error increases",
	}
	ml, keys, err := minKSeries(run, func(r PositionResult) float64 { return r.MLocErr })
	if err != nil {
		return t, err
	}
	ar, _, err := minKSeries(run, func(r PositionResult) float64 { return r.APRadErr })
	if err != nil {
		return t, err
	}
	ce, _, err := minKSeries(run, func(r PositionResult) float64 { return r.CentroidErr })
	if err != nil {
		return t, err
	}
	for _, k := range keys {
		t.AddRow(k, cell(ml, k), cell(ar, k), cell(ce, k))
	}
	return t, nil
}

// cell formats a series value, or "n/a" when the series has no positions
// with that minimum k (e.g. every estimate at that k failed).
func cell(series map[int]float64, k int) interface{} {
	v, ok := series[k]
	if !ok {
		return "n/a"
	}
	return v
}

// Fig15 renders the intersected area versus minimum k for M-Loc and AP-Rad.
func Fig15(run *CampusRun) (Table, error) {
	t := Table{
		ID:     "fig15",
		Title:  "Intersected area (m²) vs minimum number of communicable APs",
		Header: []string{"min_k", "mloc_area", "aprad_area"},
		Notes:  "paper: AP-Rad's area exceeds M-Loc's (radius overestimation)",
	}
	ml, keys, err := minKSeries(run, func(r PositionResult) float64 { return r.MLocArea })
	if err != nil {
		return t, err
	}
	ar, _, err := minKSeries(run, func(r PositionResult) float64 { return r.APRadArea })
	if err != nil {
		return t, err
	}
	for _, k := range keys {
		t.AddRow(k, cell(ml, k), cell(ar, k))
	}
	return t, nil
}

// Fig16 renders the probability that the intersected region covers the
// device's true position, versus minimum k.
func Fig16(run *CampusRun) (Table, error) {
	t := Table{
		ID:     "fig16",
		Title:  "Coverage probability vs minimum number of communicable APs",
		Header: []string{"min_k", "mloc", "aprad"},
		Notes:  "paper: AP-Rad's coverage probability trails M-Loc's",
	}
	toF := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	ml, keys, err := minKSeries(run, func(r PositionResult) float64 { return toF(r.MLocCovers) })
	if err != nil {
		return t, err
	}
	ar, _, err := minKSeries(run, func(r PositionResult) float64 { return toF(r.APRadCovers) })
	if err != nil {
		return t, err
	}
	for _, k := range keys {
		t.AddRow(k, cell(ml, k), cell(ar, k))
	}
	return t, nil
}

// Fig17 renders AP-Loc's average localization error versus the number of
// training tuples, against the (training-free) Centroid baseline.
func Fig17(run *CampusRun) (Table, error) {
	t := Table{
		ID:     "fig17",
		Title:  "AP-Loc average error (m) vs number of training tuples",
		Header: []string{"tuples", "aploc_err", "centroid_err"},
		Notes:  "paper: 12.21 m with only 19 training tuples, beating Centroid",
	}
	if len(run.Tuples) < 5 {
		return t, fmt.Errorf("fig17: only %d training tuples", len(run.Tuples))
	}
	// Centroid reference over the same positions.
	var ce []float64
	for _, r := range run.Results {
		if !math.IsNaN(r.CentroidErr) {
			ce = append(ce, r.CentroidErr)
		}
	}
	centMean := stats.Mean(ce)

	counts := []int{5, 9, 14, 19, 25, 32, 40, 60, 90, 130}
	for _, n := range counts {
		if n > len(run.Tuples) {
			break
		}
		// Evenly spaced subset of the training drive.
		subset := make([]wardrive.Tuple, 0, n)
		for i := 0; i < n; i++ {
			subset = append(subset, run.Tuples[i*len(run.Tuples)/n])
		}
		know, err := core.EstimateAPLocations(subset, core.APLocConfig{
			TrainingRadius: 130,
		})
		if err != nil {
			return t, fmt.Errorf("fig17 n=%d: %w", n, err)
		}
		// Estimate radii over the observed device sets restricted to the
		// trained APs, then localize each scan position.
		deviceSets := make(map[dot11.MAC][]dot11.MAC)
		for i, gamma := range run.scanGammas {
			var g []dot11.MAC
			for _, m := range gamma {
				if _, ok := know.Get(m); ok {
					g = append(g, m)
				}
			}
			if len(g) >= 2 {
				deviceSets[sim.NewMAC(0xB0, i)] = g
			}
		}
		knowEst, _, err := core.EstimateRadii(know, deviceSets,
			core.APRadConfig{MaxRadius: run.cfg.MaxRadius, MaxNeighborConstraints: 12})
		if err != nil {
			return t, fmt.Errorf("fig17 radii n=%d: %w", n, err)
		}
		var errs []float64
		for i, gamma := range run.scanGammas {
			if len(gamma) == 0 {
				continue
			}
			est, err := core.MLoc(knowEst, gamma)
			if err != nil {
				continue
			}
			truth := run.Results[resultIndex(run, i)].Truth
			errs = append(errs, core.Error(est, truth))
		}
		if len(errs) == 0 {
			t.AddRow(n, "n/a", centMean)
			continue
		}
		t.AddRow(n, stats.Mean(errs), centMean)
	}
	return t, nil
}

// resultIndex maps a scan index to its entry in run.Results (scan
// positions with empty Γ produce no result).
func resultIndex(run *CampusRun, scanIdx int) int {
	idx := -1
	for i := 0; i <= scanIdx && i < len(run.scanGammas); i++ {
		if len(run.scanGammas[i]) > 0 {
			idx++
		}
	}
	return idx
}
