package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/stats"
)

// AblationChannelPlans compares monitoring channel plans (DESIGN.md §5):
// the fraction of a campus AP population whose channel each plan can
// decode, and the card count it costs. The paper's claim: {1,6,11} with 3
// cards covers ~93.7% of APs; the folk {3,6,9} plan covers almost nothing
// extra because adjacent-channel decoding fails (Fig 9).
func AblationChannelPlans(nAPs int, seed int64) (Table, error) {
	t := Table{
		ID:     "ablation-channel-plans",
		Title:  "Channel plans: fraction of campus APs decodable",
		Header: []string{"plan", "cards", "fraction"},
		Notes:  "paper: 3 cards on 1/6/11 suffice (93.7%); {3,6,9} folk plan fails",
	}
	w := sim.NewWorld(seed)
	aps, err := sim.CampusDeployment(nAPs, w.RNG())
	if err != nil {
		return t, fmt.Errorf("channel ablation: %w", err)
	}
	plans := []struct {
		name string
		plan dot11.ChannelPlan
	}{
		{"1-6-11", dot11.DefaultPlan()},
		{"3-6-9", dot11.FolkPlan()},
		{"all-11", dot11.FullPlan()},
	}
	for _, p := range plans {
		covered := 0
		for _, ap := range aps {
			if p.plan.Covers(ap.Channel) {
				covered++
			}
		}
		t.AddRow(p.name, len(p.plan.Cards), float64(covered)/float64(len(aps)))
	}
	return t, nil
}

// AblationCentroidEstimators compares the paper's M-Loc estimator (the
// centroid of the intersection region's vertex set Δ) with the centroid of
// the region's area estimated by Monte-Carlo sampling — a more expensive
// estimator one might expect to be more accurate.
func AblationCentroidEstimators(trials int, seed int64) (Table, error) {
	t := Table{
		ID:     "ablation-centroid",
		Title:  "M-Loc estimator: vertex centroid vs region-area centroid",
		Header: []string{"estimator", "mean_err_m", "p90_err_m"},
		Notes:  "the vertex centroid is nearly as accurate and far cheaper",
	}
	rng := rand.New(rand.NewSource(seed))
	var vertexErrs, areaErrs []float64
	for i := 0; i < trials; i++ {
		truth := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		k := rng.Intn(10) + 3
		r := 80 + rng.Float64()*60
		discs := make([]geom.Circle, 0, k)
		for j := 0; j < k; j++ {
			ang := rng.Float64() * 2 * math.Pi
			d := rng.Float64() * r
			discs = append(discs, geom.Circle{
				C: geom.Pt(truth.X+d*math.Cos(ang), truth.Y+d*math.Sin(ang)),
				R: r,
			})
		}
		verts := geom.RegionVertices(discs)
		if len(verts) == 0 {
			continue
		}
		vc, err := geom.Centroid(verts)
		if err != nil {
			return t, err
		}
		vertexErrs = append(vertexErrs, vc.Dist(truth))
		if ac, ok := geom.RegionCentroidMC(discs, 3000, rng); ok {
			areaErrs = append(areaErrs, ac.Dist(truth))
		}
	}
	if len(vertexErrs) == 0 || len(areaErrs) == 0 {
		return t, fmt.Errorf("centroid ablation: no usable trials")
	}
	t.AddRow("vertex", stats.Mean(vertexErrs), stats.Quantile(vertexErrs, 0.9))
	t.AddRow("area-mc", stats.Mean(areaErrs), stats.Quantile(areaErrs, 0.9))
	return t, nil
}

// AblationRadiusEstimators compares AP-Rad's LP radius estimation with the
// naive alternatives Theorem 3 warns about: a fixed theoretical upper
// bound (areas blow up) and a fixed lower bound (regions stop covering the
// device and often go empty).
func AblationRadiusEstimators(seed int64) (Table, error) {
	t := Table{
		ID:     "ablation-radius",
		Title:  "Radius estimation: AP-Rad LP vs fixed bounds",
		Header: []string{"estimator", "mean_err_m", "coverage", "mean_area_m2", "failed"},
		Notes:  "Theorem 3: underestimates collapse coverage; fixed overestimates inflate area",
	}
	run, err := RunCampus(CampusConfig{Seed: seed, NAPs: 240, ScanPositions: 60})
	if err != nil {
		return t, err
	}
	knowTrue := run.KnowTrue

	variants := []struct {
		name string
		know core.Knowledge
	}{
		{"ap-rad-lp", run.KnowEst},
		{"fixed-upper-160", withFixedRadius(knowTrue, 160)},
		{"fixed-lower-60", withFixedRadius(knowTrue, 60)},
		{"true-radii", knowTrue},
	}
	gammas, truths := run.ScanObservations()
	for _, v := range variants {
		var errs, areas []float64
		covered, failed, total := 0, 0, 0
		for i, gamma := range gammas {
			if len(gamma) == 0 {
				continue
			}
			total++
			est, err := core.MLoc(v.know, gamma)
			if err != nil {
				failed++
				continue
			}
			errs = append(errs, core.Error(est, truths[i]))
			areas = append(areas, core.RegionArea(v.know, gamma))
			if core.RegionCovers(v.know, gamma, truths[i]) {
				covered++
			}
		}
		cov := 0.0
		if total > 0 {
			cov = float64(covered) / float64(total)
		}
		t.AddRow(v.name, stats.Mean(errs), cov, stats.Mean(areas), failed)
	}
	return t, nil
}

func withFixedRadius(k core.Knowledge, r float64) core.Knowledge {
	out := k.All()
	for i := range out {
		out[i].MaxRange = r
	}
	return core.NewKnowledge(out)
}
