package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/positioning"
	"repro/internal/rf"
	"repro/internal/sim"
	"repro/internal/stats"
)

// PositioningComparison pits the Marauder's map against the classic
// RSS-based positioning techniques of the paper's introduction:
// trilateration and RF fingerprinting. The RSS methods run in
// self-positioning mode on device-side readings (with realistic
// shadowing) — readings a third-party attacker cannot obtain; M-Loc runs
// attacker-side on communicable-AP sets only. The comparison shows the
// paper's claim concretely: set-only localization is competitive with
// signal-strength methods while requiring nothing from the victim.
func PositioningComparison(nTest int, seed int64) (Table, error) {
	t := Table{
		ID:     "positioning-comparison",
		Title:  "Set-only attack vs RSS self-positioning (4 dB shadowing)",
		Header: []string{"method", "mean_err_m", "p90_err_m", "attacker_usable"},
		Notes:  "RSS methods need victim-side readings; the Marauder's map does not",
	}
	w := sim.NewWorld(seed)
	aps, err := sim.UniformDeployment(sim.DeploymentConfig{
		N:        200,
		Min:      geom.Pt(-350, -350),
		Max:      geom.Pt(350, 350),
		RangeMin: 70,
		RangeMax: 130,
	}, w.RNG())
	if err != nil {
		return t, fmt.Errorf("positioning comparison: %w", err)
	}
	w.APs = aps
	rng := w.RNG()

	knowInfos := make([]core.APInfo, 0, len(aps))
	for _, ap := range aps {
		knowInfos = append(knowInfos, core.APInfo{BSSID: ap.MAC, Pos: ap.Pos, MaxRange: ap.MaxRange})
	}
	know := core.NewKnowledge(knowInfos)

	model := rf.LogDistance{Exponent: 2.8, RefDistM: 1}
	rss := sim.RSSModel{PathLoss: model, ShadowingSigmaDB: 4}

	// Fingerprint training survey: a 40 m grid, one (noisy) RSS vector per
	// survey point — the "formidable training" the paper notes
	// fingerprinting needs.
	var entries []positioning.FingerprintEntry
	for x := -300.0; x <= 300; x += 40 {
		for y := -300.0; y <= 300; y += 40 {
			pos := geom.Pt(x, y)
			vec := make(map[dot11.MAC]float64)
			for _, r := range rss.ReadRSS(w, pos, rng) {
				vec[r.AP.MAC] = r.RSSIDBm
			}
			if len(vec) > 0 {
				entries = append(entries, positioning.FingerprintEntry{Pos: pos, RSSI: vec})
			}
		}
	}
	fdb, err := positioning.NewFingerprintDB(entries)
	if err != nil {
		return t, err
	}

	var triErrs, fpErrs, mlocErrs []float64
	for i := 0; i < nTest; i++ {
		truth := geom.Pt(rng.Float64()*500-250, rng.Float64()*500-250)
		readings := rss.ReadRSS(w, truth, rng)
		if len(readings) < 3 {
			continue
		}
		// Trilateration on the strongest 6 readings.
		samples := make([]positioning.RSSSample, 0, len(readings))
		vec := make(map[dot11.MAC]float64, len(readings))
		for _, r := range readings {
			samples = append(samples, positioning.RSSSample{
				Pos:     r.AP.Pos,
				RSSIDBm: r.RSSIDBm,
				EIRPDBm: r.AP.TX.EIRPDBm(),
				FreqHz:  r.AP.TX.FreqHz,
			})
			vec[r.AP.MAC] = r.RSSIDBm
		}
		if est, err := positioning.Trilaterate(samples, model); err == nil {
			triErrs = append(triErrs, est.Dist(truth))
		}
		if est, err := fdb.Locate(vec, 3); err == nil {
			fpErrs = append(fpErrs, est.Dist(truth))
		}
		// The attack: set-only M-Loc on the true communicable set.
		var gamma []dot11.MAC
		for _, ap := range w.CommunicableAPs(truth) {
			gamma = append(gamma, ap.MAC)
		}
		if est, err := core.MLoc(know, gamma); err == nil {
			mlocErrs = append(mlocErrs, core.Error(est, truth))
		}
	}
	if len(triErrs) == 0 || len(fpErrs) == 0 || len(mlocErrs) == 0 {
		return t, fmt.Errorf("positioning comparison: a method produced no estimates")
	}
	add := func(name string, errs []float64, attackerUsable string) {
		t.AddRow(name, stats.Mean(errs), stats.Quantile(errs, 0.9), attackerUsable)
	}
	add("rss-trilateration", triErrs, "no (needs victim RSS)")
	add("rf-fingerprinting", fpErrs, "no (needs victim RSS + survey)")
	add("mloc-set-only", mlocErrs, "yes")
	if math.IsNaN(stats.Mean(mlocErrs)) {
		return t, fmt.Errorf("positioning comparison: NaN errors")
	}
	return t, nil
}
