package experiments

import (
	"math"

	"repro/internal/dot11"
)

// dot11MAC aliases the MAC type to keep figure code terse.
type dot11MAC = dot11.MAC

// testMAC derives a MAC for synthetic scenario entities.
func testMAC(i byte) dot11.MAC { return dot11.MAC{0x02, 0xEE, 0, 0, 0, i} }

func cos(x float64) float64 { return math.Cos(x) }
func sin(x float64) float64 { return math.Sin(x) }
