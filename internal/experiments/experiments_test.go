package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tb := Table{ID: "x", Title: "demo", Header: []string{"a", "b"}}
	tb.AddRow(1, 2.34567)
	tb.AddRow("s", 0.5)
	out := tb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "2.346") {
		t.Errorf("rendered:\n%s", out)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,b\n1,2.346") {
		t.Errorf("csv:\n%s", csv)
	}
}

func TestFig2Shape(t *testing.T) {
	tb, err := Fig2(500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 30 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// CA monotone decreasing down the k column.
	prev := 1e18
	for _, row := range tb.Rows {
		ca := parseF(t, row[1])
		if ca >= prev {
			t.Fatalf("CA not decreasing at k=%s", row[0])
		}
		prev = ca
	}
}

func TestFig3Shape(t *testing.T) {
	tb, err := Fig3(5)
	if err != nil {
		t.Fatal(err)
	}
	first := parseF(t, tb.Rows[0][2])
	last := parseF(t, tb.Rows[len(tb.Rows)-1][2])
	if last >= first {
		t.Errorf("CA should fall as r grows at fixed density: %v -> %v", first, last)
	}
}

func TestFig4Shape(t *testing.T) {
	tb, err := Fig4(1)
	if err != nil {
		t.Fatal(err)
	}
	// With the largest cluster, centroid error must exceed m-loc error.
	lastRow := tb.Rows[len(tb.Rows)-1]
	if parseF(t, lastRow[1]) <= parseF(t, lastRow[2]) {
		t.Errorf("biased centroid %s should exceed m-loc %s", lastRow[1], lastRow[2])
	}
	// Centroid error grows with cluster size.
	if parseF(t, tb.Rows[0][1]) >= parseF(t, lastRow[1]) {
		t.Error("centroid error should grow with cluster size")
	}
}

func TestFig5Shape(t *testing.T) {
	tb, err := Fig5(400, 1)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, row := range tb.Rows {
		ca := parseF(t, row[1])
		if ca <= prev {
			t.Fatalf("area must grow with R: row %v", row)
		}
		prev = ca
	}
}

func TestFig6Shape(t *testing.T) {
	tb, err := Fig6(20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	prev := 2.0
	for _, row := range tb.Rows {
		p := parseF(t, row[1])
		if p >= prev {
			t.Fatalf("coverage must fall as R shrinks: row %v", row)
		}
		prev = p
	}
}

func TestFig8Shape(t *testing.T) {
	tb, err := Fig8(600, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Last row is the 1+6+11 aggregate.
	agg := tb.Rows[len(tb.Rows)-1]
	frac := parseF(t, agg[2])
	if frac < 0.88 || frac > 0.99 {
		t.Errorf("1/6/11 fraction = %v, want ~0.937", frac)
	}
}

func TestFig9Shape(t *testing.T) {
	tb, err := Fig9(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		ch := row[0]
		frac := parseF(t, row[2])
		if ch == "11" && frac != 1 {
			t.Errorf("on-channel recognition = %v, want 1", frac)
		}
		if ch != "11" && frac > 0.1 {
			t.Errorf("channel %s recognition = %v, want ~0", ch, frac)
		}
	}
}

func TestFigs10And11Shape(t *testing.T) {
	tb, err := Figs10And11(80, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 7 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		pct := parseF(t, row[4])
		pctA := parseF(t, row[5])
		if pct < 50 {
			t.Errorf("day %s: probing pct = %v, want > 50 (paper's floor)", row[0], pct)
		}
		if pctA < pct-1e-9 {
			t.Errorf("active attack must not lower the probing pct: %v -> %v", pct, pctA)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	tb, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	radii := map[string]float64{}
	for _, row := range tb.Rows {
		radii[row[0]] = parseF(t, row[2])
	}
	if !(radii["DLink"] < radii["SRC"] && radii["SRC"] < radii["HG2415U"] &&
		radii["HG2415U"] <= radii["LNA"]) {
		t.Errorf("urban coverage ordering wrong: %v", radii)
	}
	if radii["LNA"] < 500 || radii["LNA"] > 2500 {
		t.Errorf("LNA urban radius = %v, want ~1 km", radii["LNA"])
	}
}

// The campus run backs Figs 13-17; run it once at a reduced size and check
// every headline shape the paper reports.
func TestCampusRunShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("campus experiment is a few seconds")
	}
	run, err := RunCampus(CampusConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Results) < 30 {
		t.Fatalf("too few results: %d", len(run.Results))
	}

	f13, err := Fig13(run)
	if err != nil {
		t.Fatal(err)
	}
	means := f13.Rows[len(f13.Rows)-1]
	mloc, aprad, cent := parseF(t, means[1]), parseF(t, means[2]), parseF(t, means[3])
	if !(mloc < aprad) {
		t.Errorf("M-Loc (%v) must beat AP-Rad (%v)", mloc, aprad)
	}
	if !(mloc < cent) {
		t.Errorf("M-Loc (%v) must beat Centroid (%v)", mloc, cent)
	}
	if mloc > 25 {
		t.Errorf("M-Loc mean error = %v m, paper ballpark is ~10 m", mloc)
	}

	f14, err := Fig14(run)
	if err != nil {
		t.Fatal(err)
	}
	// M-Loc error falls with k (paper Fig 14). Single top-k buckets hold
	// few positions at this reduced experiment size, so compare the mean
	// of the first three thresholds against the mean of the last three.
	headTail := func(col int) (head, tail float64) {
		n := len(f14.Rows)
		span := 3
		if span > n/2 {
			span = n / 2
		}
		for i := 0; i < span; i++ {
			head += parseF(t, f14.Rows[i][col])
			tail += parseF(t, f14.Rows[n-1-i][col])
		}
		return head / float64(span), tail / float64(span)
	}
	head, tail := headTail(1)
	if tail >= head {
		t.Errorf("M-Loc error should fall with k: head %v -> tail %v", head, tail)
	}

	f15, err := Fig15(run)
	if err != nil {
		t.Fatal(err)
	}
	// AP-Rad area above M-Loc area at the lowest threshold.
	if parseF(t, f15.Rows[0][2]) <= parseF(t, f15.Rows[0][1]) {
		t.Errorf("AP-Rad area should exceed M-Loc area: %v", f15.Rows[0])
	}

	f16, err := Fig16(run)
	if err != nil {
		t.Fatal(err)
	}
	// M-Loc coverage 1.0 with true knowledge; AP-Rad strictly below.
	if parseF(t, f16.Rows[0][1]) != 1 {
		t.Errorf("M-Loc coverage = %v, want 1", f16.Rows[0][1])
	}
	if parseF(t, f16.Rows[0][2]) >= 1 {
		t.Errorf("AP-Rad coverage should trail M-Loc: %v", f16.Rows[0])
	}

	f17, err := Fig17(run)
	if err != nil {
		t.Fatal(err)
	}
	if len(f17.Rows) < 4 {
		t.Fatalf("fig17 rows = %d", len(f17.Rows))
	}
	// AP-Loc error decreases as training tuples grow (compare first vs
	// last row).
	if parseF(t, f17.Rows[len(f17.Rows)-1][1]) >= parseF(t, f17.Rows[0][1]) {
		t.Errorf("AP-Loc error should fall with training size: %v -> %v",
			f17.Rows[0][1], f17.Rows[len(f17.Rows)-1][1])
	}
}
