// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section IV) from the reproduction's own components.
// Each FigN function returns a Table whose rows are the series the paper
// plots; cmd/benchfig prints them, and the repository-root benchmarks time
// and sanity-check them.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one regenerated figure or table: a titled grid of formatted
// values.
type Table struct {
	// ID is the experiment identifier, e.g. "fig13".
	ID string `json:"id"`
	// Title describes what the paper's figure shows.
	Title string `json:"title"`
	// Header names the columns.
	Header []string `json:"header"`
	// Rows holds the formatted data.
	Rows [][]string `json:"rows"`
	// Notes records paper-reported reference values for EXPERIMENTS.md.
	Notes string `json:"notes,omitempty"`
}

// AddRow appends a formatted row; values are rendered with %v, floats with
// four significant decimals.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, 0, len(vals))
	for _, v := range vals {
		switch x := v.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.4g", x))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned text.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "-- %s\n", t.Notes)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header + rows).
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
