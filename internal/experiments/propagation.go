package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/sim"
	"repro/internal/stats"
)

// AblationPropagation quantifies the paper's §III-A worst-case argument:
// the spherical disc model overestimates each AP's true coverage, so when
// reality deviates — obstructions shadow links, radios underperform their
// nominal maximum — the device's observed set Γ only *shrinks*, every
// observed AP still genuinely covers the device, and the intersection
// region keeps containing the true location. The attack loses precision
// (fewer discs to intersect) but never its guarantee.
//
// Three worlds share one deployment; the attacker always reasons with the
// nominal spherical discs:
//
//	spherical   — reality matches the model exactly
//	obstructed  — hills hard-shadow links inside the nominal discs
//	derated     — every radio reaches only 80% of its nominal maximum
func AblationPropagation(nPositions int, seed int64) (Table, error) {
	t := Table{
		ID:     "ablation-propagation",
		Title:  "Attack accuracy when reality deviates from the spherical model",
		Header: []string{"world_model", "mean_err_m", "coverage", "mean_k"},
		Notes:  "paper §III-A: the spherical model is the conservative worst case",
	}
	deploy := func() (*sim.World, error) {
		w := sim.NewWorld(seed) // same seed → identical deployment
		aps, err := sim.UniformDeployment(sim.DeploymentConfig{
			N:        220,
			Min:      geom.Pt(-350, -350),
			Max:      geom.Pt(350, 350),
			RangeMin: 70,
			RangeMax: 130,
		}, w.RNG())
		if err != nil {
			return nil, err
		}
		w.APs = aps
		return w, nil
	}

	type variant struct {
		name  string
		setup func(*sim.World)
	}
	variants := []variant{
		{"spherical", func(*sim.World) {}},
		{"obstructed", func(w *sim.World) {
			w.Model = sim.ModelSphericalObstructed
			w.Terrain = sim.Hills{
				{Center: geom.Pt(-120, 60), Radius: 60, LossDB: 25},
				{Center: geom.Pt(150, -140), Radius: 50, LossDB: 25},
				{Center: geom.Pt(40, 210), Radius: 55, LossDB: 25},
			}
		}},
		{"derated-80pct", func(w *sim.World) {
			for _, ap := range w.APs {
				ap.MaxRange *= 0.8
			}
		}},
	}
	for _, v := range variants {
		w, err := deploy()
		if err != nil {
			return t, fmt.Errorf("propagation ablation: %w", err)
		}
		// Snapshot the attacker's knowledge BEFORE derating: always the
		// nominal discs.
		knowInfos := make([]core.APInfo, 0, len(w.APs))
		for _, ap := range w.APs {
			knowInfos = append(knowInfos, core.APInfo{BSSID: ap.MAC, Pos: ap.Pos, MaxRange: ap.MaxRange})
		}
		know := core.NewKnowledge(knowInfos)
		v.setup(w)

		rng := w.RNG()
		var errs []float64
		covered, total, kSum := 0, 0, 0
		for i := 0; i < nPositions; i++ {
			truth := geom.Pt(rng.Float64()*600-300, rng.Float64()*600-300)
			var gamma []dot11.MAC
			for _, ap := range w.CommunicableAPs(truth) {
				gamma = append(gamma, ap.MAC)
			}
			if len(gamma) == 0 {
				continue
			}
			total++
			kSum += len(gamma)
			if core.RegionCovers(know, gamma, truth) {
				covered++
			}
			est, err := core.MLoc(know, gamma)
			if err != nil {
				continue
			}
			errs = append(errs, core.Error(est, truth))
		}
		if total == 0 {
			return t, fmt.Errorf("propagation ablation: no communicable positions under %s", v.name)
		}
		mean := stats.Mean(errs)
		if math.IsNaN(mean) {
			return t, fmt.Errorf("propagation ablation: NaN error under %s", v.name)
		}
		t.AddRow(v.name, mean, float64(covered)/float64(total),
			float64(kSum)/float64(total))
	}
	return t, nil
}
