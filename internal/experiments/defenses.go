package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/privacy"
	"repro/internal/rf"
	"repro/internal/sim"
	"repro/internal/sniffer"
	"repro/internal/stats"
)

// DefenseEvaluation quantifies how the countermeasures of package privacy
// degrade the Marauder's map — the study the paper's conclusion calls for.
// One victim walks the campus probing for its preferred networks; each
// policy rewrites the victim's traffic before the sniffer sees it. The
// attack then tracks every MAC it observes. Reported per policy:
//
//	fixes        — position fixes obtained across the victim's pseudonyms
//	mean_err_m   — mean error of those fixes against the victim's truth
//	identities   — distinct MACs the attacker must chase
//	linked       — pseudonym pairs re-identified via probe-SSID
//	               fingerprints (the Pang-et-al. counter-countermeasure)
func DefenseEvaluation(seed int64) (Table, error) {
	t := Table{
		ID:     "defenses",
		Title:  "Countermeasure evaluation: tracking the defended victim",
		Header: []string{"policy", "fixes", "mean_err_m", "identities", "linked"},
		Notes:  "extension: the camouflaging protocols the paper's conclusion calls for",
	}

	w := sim.NewWorld(seed)
	aps, err := sim.UniformDeployment(sim.DeploymentConfig{
		N:        220,
		Min:      geom.Pt(-350, -350),
		Max:      geom.Pt(350, 350),
		RangeMin: 70,
		RangeMax: 130,
	}, w.RNG())
	if err != nil {
		return t, fmt.Errorf("defenses: %w", err)
	}
	w.APs = aps

	route := sim.NewRouteWalk([]geom.Point{
		geom.Pt(-280, -200), geom.Pt(280, -200), geom.Pt(280, 100),
		geom.Pt(-280, 100), geom.Pt(-280, 280),
	}, 1.5)
	victim := &sim.Device{
		MAC:      sim.NewMAC(0xDD, 1),
		Mobility: route,
		TX:       rf.TypicalMobile,
	}
	w.AddDevice(victim)
	total := route.TotalDuration()
	const scanInterval = 30

	// The victim's scans probe for its remembered networks (the implicit
	// identifier), by replacing the wildcard SSID in each burst's probes.
	preferred := []string{"home-net", "campus-wifi", "coffee-place"}
	baseEvents := sim.WalkTrace(w, victim, total, scanInterval)
	for i := range baseEvents {
		f := baseEvents[i].Frame
		if f.Subtype == dot11.SubtypeProbeRequest && f.Addr2 == victim.MAC {
			clone := *f
			clone.IEs = append([]dot11.IE(nil), f.IEs...)
			for j, ie := range clone.IEs {
				if ie.ID == dot11.EIDSSID {
					ssid := preferred[int(f.Seq)%len(preferred)]
					clone.IEs[j] = dot11.IE{ID: dot11.EIDSSID, Data: []byte(ssid)}
				}
			}
			baseEvents[i].Frame = &clone
		}
	}

	knowInfos := make([]core.APInfo, 0, len(aps))
	for _, ap := range aps {
		knowInfos = append(knowInfos, core.APInfo{BSSID: ap.MAC, Pos: ap.Pos, MaxRange: ap.MaxRange})
	}
	know := core.NewKnowledge(knowInfos)
	sn := sniffer.New(sniffer.Config{
		Pos:   geom.Pt(0, 0),
		Chain: rf.ChainLNA(),
		Plan:  dot11.DefaultPlan(),
	})

	policies := []privacy.Policy{
		privacy.NoDefense{},
		privacy.WildcardProbes{},
		privacy.MACRotation{PeriodSec: 120},
		// Hygiene must precede rotation: WildcardProbes matches the true
		// MAC, which rotation hides.
		privacy.Chain{privacy.WildcardProbes{}, privacy.MACRotation{PeriodSec: 120}},
		privacy.SilentPeriods{ActiveSec: 60, SilentSec: 120},
		privacy.MixZone{Zones: []geom.Circle{
			{C: geom.Pt(0, -200), R: 80}, {C: geom.Pt(0, 100), R: 80},
		}},
	}
	for _, policy := range policies {
		defended := policy.Apply(victim.MAC, baseEvents, w.RNG())
		eng, err := engine.New(engine.Config{Know: know, WindowSec: 45})
		if err != nil {
			return t, fmt.Errorf("defenses engine: %w", err)
		}
		eng.IngestCaptures(sn.CaptureAll(defended))
		store := eng.Store()

		// The attacker tracks every non-AP identity it has pairwise
		// records for; all of them are (pseudonyms of) the victim here.
		fixes := 0
		var errs []float64
		identities := make(map[dot11.MAC]bool)
		for dev := range store.DeviceAPSets() {
			identities[dev] = true
			points, err := eng.Track(dev, 0, total, scanInterval)
			if err != nil {
				return t, fmt.Errorf("defenses track: %w", err)
			}
			for _, p := range points {
				fixes++
				errs = append(errs, core.Error(p.Est, route.PosAt(p.TimeSec)))
			}
		}
		linked := len(store.LinkPseudonyms(0.6))
		t.AddRow(policy.Name(), fixes, stats.Mean(errs), len(identities), linked)
	}
	return t, nil
}
