package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rf"
	"repro/internal/sim"
	"repro/internal/sniffer"
)

// Fig8 regenerates "Channel Distribution around UML North Campus": deploy
// a campus-sized AP population and histogram the channels the sniffer's
// beacon captures report.
func Fig8(nAPs int, seed int64) (Table, error) {
	t := Table{
		ID:     "fig8",
		Title:  "802.11 b/g channel distribution (campus deployment)",
		Header: []string{"channel", "aps", "fraction"},
		Notes:  "paper: 93.7% of APs on channels 1, 6, 11",
	}
	w := sim.NewWorld(seed)
	aps, err := sim.CampusDeployment(nAPs, w.RNG())
	if err != nil {
		return t, fmt.Errorf("fig8: %w", err)
	}
	w.APs = aps
	// Observe through the capture pipeline: one beacon round, the LNA
	// sniffer at campus centre, channel-hopping across all channels so the
	// census itself is not biased by the 3-card plan.
	sn := sniffer.New(sniffer.Config{
		Pos:   geom.Pt(0, 0),
		Chain: rf.ChainLNA(),
		Plan:  dot11.FullPlan(),
	})
	caps := sn.CaptureAll(sim.BeaconTraffic(w, 0, 0.2, 0.2))
	counts := make(map[int]int)
	total := 0
	for _, c := range caps {
		if ch, ok := c.Frame.Channel(); ok {
			counts[ch]++
			total++
		}
	}
	if total == 0 {
		return t, fmt.Errorf("fig8: no beacons captured")
	}
	main := 0
	for ch := dot11.MinChannel; ch <= dot11.MaxChannel; ch++ {
		t.AddRow(ch, counts[ch], float64(counts[ch])/float64(total))
		if ch == 1 || ch == 6 || ch == 11 {
			main += counts[ch]
		}
	}
	t.AddRow("1+6+11", main, float64(main)/float64(total))
	return t, nil
}

// Fig9 regenerates the cross-channel recognition experiment: a card sends
// packets on channel 11 while listeners on channels 1..11 count how many
// they recognize. The paper's finding: neighbouring channels recognize few
// or none.
func Fig9(nFrames int, seed int64) (Table, error) {
	t := Table{
		ID:     "fig9",
		Title:  "Packets recognized by listeners vs listening channel (tx on 11)",
		Header: []string{"listen_channel", "recognized", "fraction"},
		Notes:  "paper: only the on-channel card recognizes the packets",
	}
	rng := rand.New(rand.NewSource(seed))
	const txChannel = 11
	freq, err := dot11.ChannelFreqHz(txChannel)
	if err != nil {
		return t, err
	}
	for listen := dot11.MinChannel; listen <= dot11.MaxChannel; listen++ {
		sn := sniffer.New(sniffer.Config{
			Pos:   geom.Pt(0, 0),
			Chain: rf.ChainSRC(),
			Plan:  dot11.ChannelPlan{Cards: []int{listen}},
		})
		recognized := 0
		for i := 0; i < nFrames; i++ {
			// Sender a few metres away (same office), random micro-position.
			tx := rf.TypicalMobile
			tx.FreqHz = freq
			ev := sim.TxEvent{
				TimeSec: float64(i),
				Pos:     geom.Pt(3+rng.Float64(), rng.Float64()),
				Channel: txChannel,
				Frame:   dot11.NewProbeRequest(testMAC(1), "", uint16(i)),
				TX:      tx,
			}
			if _, ok := sn.TryCapture(ev); ok {
				recognized++
			}
		}
		t.AddRow(listen, recognized, float64(recognized)/float64(nFrames))
	}
	return t, nil
}

// Figs10And11 regenerates the 7-day feasibility trace statistics: per day,
// the number of mobiles found, the number observed probing, and the
// percentage — plus the same percentage when the active attack is used.
func Figs10And11(nDevices, nAPs int, seed int64) (Table, error) {
	t := Table{
		ID:     "fig10-11",
		Title:  "7-day probing-mobile statistics (start Friday, office sniffer)",
		Header: []string{"day", "weekday", "found", "probing", "pct_probing", "pct_with_active"},
		Notes:  "paper: >50% probing every day, peak 91.61% (Oct 25); more mobiles on weekdays",
	}
	w := sim.NewWorld(seed)
	aps, err := sim.UniformDeployment(sim.DeploymentConfig{
		N: nAPs, Min: geom.Pt(-400, -400), Max: geom.Pt(400, 400),
		RangeMin: 80, RangeMax: 150,
	}, w.RNG())
	if err != nil {
		return t, fmt.Errorf("fig10: %w", err)
	}
	w.APs = aps
	w.Devices = sim.DefaultPopulation(nDevices, geom.Pt(-350, -350), geom.Pt(350, 350), w.RNG())

	sn := sniffer.New(sniffer.Config{
		Pos:   geom.Pt(0, 0),
		Chain: rf.ChainLNA(),
		Plan:  dot11.DefaultPlan(),
	})
	const startWeekday = 5 // Friday, like the paper's Oct 24 2008
	days := sim.OfficeTrace(w, 7, startWeekday, w.RNG())
	names := []string{"Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"}
	for d, evs := range days {
		store := obs.NewStore()
		for _, c := range sn.CaptureAll(evs) {
			store.Ingest(c.TimeSec, c.Frame, c.FromAP)
		}
		found := len(store.Devices())
		probing := len(store.ProbingDevices())
		pct := 0.0
		if found > 0 {
			pct = 100 * float64(probing) / float64(found)
		}
		// Active attack: deauth every associated device mid-day, capture
		// the provoked rescans.
		active := sniffer.ActiveAttack(w, float64(d)*86400+12*3600)
		for _, c := range sn.CaptureAll(active) {
			store.Ingest(c.TimeSec, c.Frame, c.FromAP)
		}
		foundA := len(store.Devices())
		pctA := 0.0
		if foundA > 0 {
			pctA = 100 * float64(len(store.ProbingDevices())) / float64(foundA)
		}
		wd := names[(startWeekday+d)%7]
		t.AddRow(d+1, wd, found, probing, pct, pctA)
	}
	return t, nil
}

// Fig12 regenerates the coverage-radius comparison of the four receiver
// chains, under free space (Theorem 1's worst case), urban log-distance
// propagation, and the hill-obstructed bearing the paper observed.
func Fig12() (Table, error) {
	t := Table{
		ID:    "fig12",
		Title: "Coverage radius of receiver chains (m)",
		Header: []string{"chain", "free_space_thm1", "urban_n2.8",
			"hill_obstructed"},
		Notes: "paper: LNA ~1000 m best; HG2415U comparable (hills); SRC and DLink far below",
	}
	urban := rf.LogDistance{Exponent: 2.8, RefDistM: 1}
	for _, chain := range rf.Fig12Chains() {
		free := rf.CoverageRadius(rf.TypicalMobile, chain)
		urb := rf.CoverageRadiusModel(rf.TypicalMobile, chain, urban, 1e6)
		// Hills cost ~12 dB on the obstructed bearing.
		hill := rf.CoverageRadiusModel(rf.TypicalMobile, chain,
			shifted{urban, 12}, 1e6)
		t.AddRow(chain.Name, free, urb, hill)
	}
	return t, nil
}

// shifted adds a constant obstruction loss to a model.
type shifted struct {
	base    rf.PathLoss
	extraDB float64
}

func (s shifted) LossDB(d, f float64) float64 { return s.base.LossDB(d, f) + s.extraDB }
