package experiments

import "testing"

func rowByName(t *testing.T, tb Table, name string) []string {
	t.Helper()
	for _, row := range tb.Rows {
		if row[0] == name {
			return row
		}
	}
	t.Fatalf("row %q not found in %v", name, tb.Rows)
	return nil
}

func TestDefenseEvaluationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("defense evaluation runs the full pipeline several times")
	}
	tb, err := DefenseEvaluation(1)
	if err != nil {
		t.Fatal(err)
	}
	none := rowByName(t, tb, "none")
	rotation := rowByName(t, tb, "mac-rotation-120s")
	combined := rowByName(t, tb, "wildcard-probes+mac-rotation-120s")
	silent := rowByName(t, tb, "silent-periods-60/120s")

	// No defence: a single identity fully tracked, no pseudonym links.
	if parseF(t, none[3]) != 1 || parseF(t, none[4]) != 0 {
		t.Errorf("baseline row = %v", none)
	}
	// Rotation multiplies identities but SSID fingerprints link them all —
	// the paper's Pang-et-al. observation.
	if parseF(t, rotation[3]) < 3 {
		t.Errorf("rotation should create several identities: %v", rotation)
	}
	if parseF(t, rotation[4]) == 0 {
		t.Errorf("rotation alone should be linkable: %v", rotation)
	}
	// Hygiene + rotation: identities remain, links vanish.
	if parseF(t, combined[4]) != 0 {
		t.Errorf("wildcard+rotation should not be linkable: %v", combined)
	}
	// Silent periods reduce the fixes obtained.
	if parseF(t, silent[1]) >= parseF(t, none[1]) {
		t.Errorf("silent periods should cut fixes: %v vs %v", silent[1], none[1])
	}
}

func TestPositioningComparisonShapes(t *testing.T) {
	tb, err := PositioningComparison(150, 1)
	if err != nil {
		t.Fatal(err)
	}
	tri := parseF(t, rowByName(t, tb, "rss-trilateration")[1])
	fp := parseF(t, rowByName(t, tb, "rf-fingerprinting")[1])
	ml := parseF(t, rowByName(t, tb, "mloc-set-only")[1])
	// Under 4 dB shadowing the set-only attack is competitive with (here:
	// better than) the RSS methods, and all of them are sane.
	if ml > 30 {
		t.Errorf("m-loc error = %v m", ml)
	}
	if tri < ml/2 {
		t.Errorf("trilateration (%v) implausibly beats set-only (%v) under shadowing", tri, ml)
	}
	if fp <= 0 || tri <= 0 {
		t.Errorf("degenerate errors: tri=%v fp=%v", tri, fp)
	}
}

func TestAblationChannelPlansShapes(t *testing.T) {
	tb, err := AblationChannelPlans(800, 1)
	if err != nil {
		t.Fatal(err)
	}
	main := parseF(t, rowByName(t, tb, "1-6-11")[2])
	folk := parseF(t, rowByName(t, tb, "3-6-9")[2])
	all := parseF(t, rowByName(t, tb, "all-11")[2])
	if all != 1 {
		t.Errorf("all-channel plan coverage = %v", all)
	}
	if main < 0.88 {
		t.Errorf("1/6/11 coverage = %v, want ~0.93", main)
	}
	if folk >= main {
		t.Errorf("folk plan (%v) must trail 1/6/11 (%v)", folk, main)
	}
}

func TestAblationCentroidEstimatorsShapes(t *testing.T) {
	tb, err := AblationCentroidEstimators(150, 1)
	if err != nil {
		t.Fatal(err)
	}
	vertex := parseF(t, rowByName(t, tb, "vertex")[1])
	area := parseF(t, rowByName(t, tb, "area-mc")[1])
	// The two estimators agree within a factor of two.
	if vertex > 2*area || area > 2*vertex {
		t.Errorf("estimators diverge: vertex %v vs area %v", vertex, area)
	}
}

func TestAblationRadiusEstimatorsShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a campus experiment")
	}
	tb, err := AblationRadiusEstimators(1)
	if err != nil {
		t.Fatal(err)
	}
	lower := rowByName(t, tb, "fixed-lower-60")
	upper := rowByName(t, tb, "fixed-upper-160")
	lp := rowByName(t, tb, "ap-rad-lp")
	trueRow := rowByName(t, tb, "true-radii")
	// Theorem 3: the underestimate fails catastrophically.
	if parseF(t, lower[2]) > 0.05 {
		t.Errorf("fixed lower bound coverage = %v, want ~0", lower[2])
	}
	if parseF(t, lower[4]) == 0 {
		t.Errorf("fixed lower bound should fail positions: %v", lower)
	}
	// The fixed overestimate covers but bloats the area versus AP-Rad.
	if parseF(t, upper[2]) < 0.95 {
		t.Errorf("fixed upper coverage = %v", upper[2])
	}
	if parseF(t, upper[3]) <= parseF(t, lp[3]) {
		t.Errorf("fixed upper area (%v) should exceed AP-Rad's (%v)", upper[3], lp[3])
	}
	// True radii are the accuracy floor.
	if parseF(t, trueRow[1]) > parseF(t, lp[1]) {
		t.Errorf("true radii (%v) should beat LP estimates (%v)", trueRow[1], lp[1])
	}
}

func TestFleetCoverageShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet coverage simulates a 5 km transect")
	}
	tb, err := FleetCoverage(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	one := parseF(t, tb.Rows[0][1])
	two := parseF(t, tb.Rows[1][1])
	if one >= 0.95 {
		t.Errorf("one site should not cover the whole transect: %v", one)
	}
	if two <= one {
		t.Errorf("two sites (%v) should beat one (%v)", two, one)
	}
	// Observed windows localize: the two fractions match per row.
	for _, row := range tb.Rows {
		if parseF(t, row[2]) > parseF(t, row[1])+1e-9 {
			t.Errorf("localized cannot exceed observed: %v", row)
		}
	}
}

func TestAblationPropagationShapes(t *testing.T) {
	tb, err := AblationPropagation(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	sph := rowByName(t, tb, "spherical")
	obs := rowByName(t, tb, "obstructed")
	der := rowByName(t, tb, "derated-80pct")
	// The worst-case guarantee: coverage stays 1.0 under every deviation.
	for _, row := range [][]string{sph, obs, der} {
		if parseF(t, row[2]) != 1 {
			t.Errorf("%s coverage = %v, want 1 (worst-case guarantee)", row[0], row[2])
		}
	}
	// Deviations shrink the observed set and cost accuracy.
	if parseF(t, der[3]) >= parseF(t, sph[3]) {
		t.Errorf("derating should shrink mean k: %v vs %v", der[3], sph[3])
	}
	if parseF(t, der[1]) <= parseF(t, sph[1]) {
		t.Errorf("derating should cost accuracy: %v vs %v", der[1], sph[1])
	}
}
