package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rf"
	"repro/internal/sim"
	"repro/internal/sniffer"
	"repro/internal/stats"
)

// FleetCoverage measures how adding sniffer sites scales the attack beyond
// one antenna's reach: a victim walks a 5 km east-west transect, far
// outside any single site's reach (≈1.4 km for AP-originated responses);
// fleets of 1-4 sites capture its probing traffic and the tracker
// localizes every window it can. Reported per fleet size: the fraction of
// scan positions observed at all, the fraction localized, and the mean
// error of the obtained fixes.
func FleetCoverage(seed int64) (Table, error) {
	t := Table{
		ID:     "fleet-coverage",
		Title:  "Attack coverage vs number of sniffer sites (5 km transect)",
		Header: []string{"sites", "observed_frac", "localized_frac", "mean_err_m"},
		Notes:  "extension: scaling the paper's single-antenna design across sites",
	}
	w := sim.NewWorld(seed)
	aps, err := sim.UniformDeployment(sim.DeploymentConfig{
		N:        1000,
		Min:      geom.Pt(-2600, -250),
		Max:      geom.Pt(2600, 250),
		RangeMin: 70,
		RangeMax: 130,
	}, w.RNG())
	if err != nil {
		return t, fmt.Errorf("fleet coverage: %w", err)
	}
	w.APs = aps

	route := sim.NewRouteWalk([]geom.Point{geom.Pt(-2500, 0), geom.Pt(2500, 0)}, 1.5)
	victim := &sim.Device{
		MAC:      sim.NewMAC(0xDD, 1),
		Mobility: route,
		TX:       rf.TypicalMobile,
	}
	w.AddDevice(victim)
	total := route.TotalDuration()
	const scans = 80
	interval := total / scans
	events := sim.WalkTrace(w, victim, total, interval)

	knowInfos := make([]core.APInfo, 0, len(aps))
	for _, ap := range aps {
		knowInfos = append(knowInfos, core.APInfo{BSSID: ap.MAC, Pos: ap.Pos, MaxRange: ap.MaxRange})
	}
	know := core.NewKnowledge(knowInfos)

	sitePlans := [][]geom.Point{
		{geom.Pt(0, 0)},
		{geom.Pt(-1250, 0), geom.Pt(1250, 0)},
		{geom.Pt(-1700, 0), geom.Pt(0, 0), geom.Pt(1700, 0)},
		{geom.Pt(-1875, 0), geom.Pt(-625, 0), geom.Pt(625, 0), geom.Pt(1875, 0)},
	}
	for _, sites := range sitePlans {
		configs := make([]sniffer.Config, 0, len(sites))
		for _, pos := range sites {
			configs = append(configs, sniffer.Config{
				Pos:   pos,
				Chain: rf.ChainLNA(),
				Plan:  dot11.DefaultPlan(),
			})
		}
		fleet := sniffer.NewFleet(configs...)
		store := obs.NewStore()
		for _, c := range fleet.CaptureAll(events) {
			store.Ingest(c.TimeSec, c.Frame, c.FromAP)
		}
		observed, localized := 0, 0
		var errs []float64
		for i := 0; i < scans; i++ {
			ts := float64(i) * interval
			gamma := store.APSetWindow(victim.MAC, ts-interval/2, ts+interval/2)
			if len(gamma) == 0 {
				continue
			}
			observed++
			est, err := core.MLoc(know, gamma)
			if err != nil {
				continue
			}
			localized++
			errs = append(errs, core.Error(est, route.PosAt(ts)))
		}
		t.AddRow(len(sites),
			float64(observed)/scans,
			float64(localized)/scans,
			stats.Mean(errs))
	}
	return t, nil
}
