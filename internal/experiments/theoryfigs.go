package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/theory"
)

// Fig2 regenerates "Intersected Area vs Number of Communicable APs"
// (Theorem 2, r = 1): the quadrature value for k = 1..30 with Monte-Carlo
// cross-checks at selected k.
func Fig2(mcTrials int, seed int64) (Table, error) {
	t := Table{
		ID:     "fig2",
		Title:  "Intersected area vs number of communicable APs (r=1)",
		Header: []string{"k", "CA_theorem2", "CA_montecarlo", "k*CA"},
		Notes:  "paper: CA roughly inversely proportional to k",
	}
	rng := rand.New(rand.NewSource(seed))
	for k := 1; k <= 30; k++ {
		ca, err := theory.IntersectedArea(k, 1)
		if err != nil {
			return t, fmt.Errorf("fig2 k=%d: %w", k, err)
		}
		mc := ""
		if k%5 == 0 || k == 1 {
			v, err := theory.MonteCarloIntersectedArea(k, 1, 1, mcTrials, rng)
			if err != nil {
				return t, fmt.Errorf("fig2 mc k=%d: %w", k, err)
			}
			mc = fmt.Sprintf("%.4g", v)
		}
		t.AddRow(k, ca, mc, float64(k)*ca)
	}
	return t, nil
}

// Fig3 regenerates "Intersected Area vs Maximum Transmission Distance":
// CA as a function of r at fixed AP density (Corollary 1: k = πr²ρ grows
// with r, and CA decreases).
func Fig3(rho float64) (Table, error) {
	t := Table{
		ID:     "fig3",
		Title:  fmt.Sprintf("Intersected area vs maximum transmission distance (density=%.3g)", rho),
		Header: []string{"r", "k=pi*r^2*rho", "CA"},
		Notes:  "paper: CA decreases as transmission distance grows at fixed density",
	}
	for _, r := range []float64{0.6, 0.8, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0} {
		ca, err := theory.IntersectedAreaForDensity(r, rho)
		if err != nil {
			return t, fmt.Errorf("fig3 r=%v: %w", r, err)
		}
		k := 3.14159265 * r * r * rho
		t.AddRow(r, k, ca)
	}
	return t, nil
}

// Fig4 demonstrates the Centroid baseline's fragility under biased AP
// distributions: 5 uniform APs plus a growing cluster, as in the paper's
// example. Disc-intersection only gets more accurate as APs are added.
func Fig4(seed int64) (Table, error) {
	t := Table{
		ID:     "fig4",
		Title:  "Centroid vs disc-intersection under biased AP distribution",
		Header: []string{"cluster_aps", "centroid_err_m", "mloc_err_m"},
		Notes:  "paper: centroid degrades with cluster size, disc-intersection does not",
	}
	rng := rand.New(rand.NewSource(seed))
	truth := geom.Pt(0, 0)
	r := 200.0
	base := make([]core.APInfo, 0, 5)
	for i := 0; i < 5; i++ {
		ang := rng.Float64() * 6.283185307
		d := rng.Float64() * r * 0.8
		base = append(base, core.APInfo{
			BSSID:    testMAC(byte(i + 1)),
			Pos:      geom.Pt(truth.X+d*cos(ang), truth.Y+d*sin(ang)),
			MaxRange: r,
		})
	}
	for _, nCluster := range []int{0, 2, 5, 10, 20} {
		infos := append([]core.APInfo(nil), base...)
		for i := 0; i < nCluster; i++ {
			infos = append(infos, core.APInfo{
				BSSID:    testMAC(byte(50 + i)),
				Pos:      geom.Pt(115+rng.Float64()*20, 115+rng.Float64()*20),
				MaxRange: r,
			})
		}
		k := core.NewKnowledge(infos)
		gamma := make([]dot11MAC, 0, len(infos))
		for _, in := range infos {
			gamma = append(gamma, in.BSSID)
		}
		cent, err := core.CentroidBaseline(k, gamma)
		if err != nil {
			return t, fmt.Errorf("fig4 centroid: %w", err)
		}
		ml, err := core.MLoc(k, gamma)
		if err != nil {
			return t, fmt.Errorf("fig4 mloc: %w", err)
		}
		t.AddRow(nCluster, core.Error(cent, truth), core.Error(ml, truth))
	}
	return t, nil
}

// Fig5 regenerates "Intersected area vs estimated maximum transmission
// distance" (Theorem 3, R ≥ r, k = 10, r = 1).
func Fig5(mcTrials int, seed int64) (Table, error) {
	t := Table{
		ID:     "fig5",
		Title:  "Intersected area vs overestimated transmission distance (k=10, r=1)",
		Header: []string{"R", "CA_theorem3", "CA_montecarlo"},
		Notes:  "paper: area grows rapidly with the overestimate R",
	}
	rng := rand.New(rand.NewSource(seed))
	for _, r := range []float64{1.0, 1.1, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0} {
		ca, err := theory.OverestimatedArea(10, 1, r)
		if err != nil {
			return t, fmt.Errorf("fig5 R=%v: %w", r, err)
		}
		mc, err := theory.MonteCarloIntersectedArea(10, 1, r, mcTrials, rng)
		if err != nil {
			return t, fmt.Errorf("fig5 mc R=%v: %w", r, err)
		}
		t.AddRow(r, ca, mc)
	}
	return t, nil
}

// Fig6 regenerates "Coverage probability vs underestimated transmission
// distance" (Theorem 3, R < r, k = 10): p = (R/r)^{2k}.
func Fig6(mcTrials int, seed int64) (Table, error) {
	t := Table{
		ID:     "fig6",
		Title:  "Coverage probability vs underestimated transmission distance (k=10, r=1)",
		Header: []string{"R", "p_closed", "p_montecarlo"},
		Notes:  "paper: probability collapses quickly once R < r",
	}
	rng := rand.New(rand.NewSource(seed))
	for _, r := range []float64{0.99, 0.95, 0.9, 0.8, 0.7, 0.5} {
		p, err := theory.UnderestimateCoverage(10, 1, r)
		if err != nil {
			return t, fmt.Errorf("fig6 R=%v: %w", r, err)
		}
		mc, err := theory.MonteCarloCoverage(10, 1, r, mcTrials, rng)
		if err != nil {
			return t, fmt.Errorf("fig6 mc R=%v: %w", r, err)
		}
		t.AddRow(r, p, mc)
	}
	return t, nil
}
