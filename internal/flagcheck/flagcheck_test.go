package flagcheck

import (
	"flag"
	"fmt"
	"strings"
	"testing"
	"time"
)

func parse(t *testing.T, args ...string) *flag.FlagSet {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.Bool("chaos", false, "")
	fs.Int64("chaos-seed", 1, "")
	fs.String("checkpoint-dir", "", "")
	fs.Duration("checkpoint-interval", 10*time.Second, "")
	fs.Bool("wire-chaos", false, "")
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestRequiresPassesWhenDependentUnset(t *testing.T) {
	c := New(parse(t)).
		Requires("chaos-seed", "chaos").
		Requires("checkpoint-interval", "checkpoint-dir")
	if err := c.Err(); err != nil {
		t.Fatalf("defaults flagged: %v", err)
	}
}

func TestRequiresPassesWhenEnablerSet(t *testing.T) {
	c := New(parse(t, "-chaos", "-chaos-seed", "7")).Requires("chaos-seed", "chaos")
	if err := c.Err(); err != nil {
		t.Fatalf("valid combo flagged: %v", err)
	}
}

func TestRequiresCatchesDanglingDependent(t *testing.T) {
	c := New(parse(t, "-chaos-seed", "7")).Requires("chaos-seed", "chaos")
	err := c.Err()
	if err == nil {
		t.Fatal("dangling -chaos-seed accepted")
	}
	if !strings.Contains(err.Error(), "-chaos-seed") || !strings.Contains(err.Error(), "-chaos") {
		t.Fatalf("error does not name both flags: %v", err)
	}
}

func TestRequiresAnyEnabler(t *testing.T) {
	c := New(parse(t, "-checkpoint-interval", "1s", "-wire-chaos")).
		Requires("checkpoint-interval", "checkpoint-dir", "wire-chaos")
	if err := c.Err(); err != nil {
		t.Fatalf("alternate enabler rejected: %v", err)
	}
}

func TestErrJoinsAllViolations(t *testing.T) {
	c := New(parse(t, "-chaos-seed", "7", "-checkpoint-interval", "1s")).
		Requires("chaos-seed", "chaos").
		Requires("checkpoint-interval", "checkpoint-dir")
	err := c.Err()
	if err == nil {
		t.Fatal("two violations accepted")
	}
	for _, want := range []string{"-chaos-seed", "-checkpoint-interval"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %s: %v", want, err)
		}
	}
}

func TestExplicit(t *testing.T) {
	c := New(parse(t, "-chaos"))
	if !c.Explicit("chaos") || c.Explicit("chaos-seed") {
		t.Fatalf("explicit detection wrong: chaos=%v chaos-seed=%v",
			c.Explicit("chaos"), c.Explicit("chaos-seed"))
	}
}

func TestUnknownFlagPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rule with a typo did not panic")
		}
	}()
	New(parse(t)).Requires("chaso", "chaos")
}

func TestCheckpointInterval(t *testing.T) {
	var logged []string
	logf := func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }

	if d, on := CheckpointInterval(5*time.Second, logf); !on || d != 5*time.Second {
		t.Fatalf("positive interval: %v %v", d, on)
	}
	if len(logged) != 0 {
		t.Fatalf("positive interval logged: %v", logged)
	}
	for _, d := range []time.Duration{0, -time.Second} {
		logged = nil
		if got, on := CheckpointInterval(d, logf); on || got != 0 {
			t.Fatalf("interval %v: got %v, on=%v", d, got, on)
		}
		if len(logged) != 1 || !strings.Contains(logged[0], "disabled") {
			t.Fatalf("interval %v: log %v", d, logged)
		}
	}
}
