// Package flagcheck validates dependent command-line flag combinations
// in one place, after flag.Parse. The commands in this repo grew pairs
// of flags where one only means something when another is on
// (-chaos-seed without -chaos, -checkpoint-interval without
// -checkpoint-dir): silently ignoring the dangling flag hides operator
// typos, so the checker turns each into a clear error naming both flags.
package flagcheck

import (
	"errors"
	"flag"
	"fmt"
	"strings"
	"time"
)

// Checker accumulates dependent-flag rules against a parsed FlagSet.
type Checker struct {
	fs   *flag.FlagSet
	set  map[string]bool
	errs []error
}

// New builds a checker for fs, which must already be parsed. Rule
// methods panic on flag names that do not exist — a misspelled rule is
// a programming error, not an operator error.
func New(fs *flag.FlagSet) *Checker {
	c := &Checker{fs: fs, set: make(map[string]bool)}
	fs.Visit(func(f *flag.Flag) { c.set[f.Name] = true })
	return c
}

// lookup panics on unknown flag names so rules cannot rot silently.
func (c *Checker) lookup(name string) *flag.Flag {
	f := c.fs.Lookup(name)
	if f == nil {
		panic(fmt.Sprintf("flagcheck: rule references unknown flag -%s", name))
	}
	return f
}

// Explicit reports whether the flag was set on the command line (as
// opposed to keeping its default).
func (c *Checker) Explicit(name string) bool {
	c.lookup(name)
	return c.set[name]
}

// Requires errors when dependent was set explicitly but none of the
// enabler flags were: the dependent flag tunes a feature the command
// line never turned on.
func (c *Checker) Requires(dependent string, enablers ...string) *Checker {
	c.lookup(dependent)
	if len(enablers) == 0 {
		panic("flagcheck: Requires needs at least one enabler")
	}
	if !c.set[dependent] {
		return c
	}
	for _, e := range enablers {
		c.lookup(e)
		if c.set[e] {
			return c
		}
	}
	names := make([]string, len(enablers))
	for i, e := range enablers {
		names[i] = "-" + e
	}
	c.errs = append(c.errs, fmt.Errorf(
		"-%s was set but does nothing without %s", dependent, strings.Join(names, " or ")))
	return c
}

// Err joins every rule violation into one error (nil when all rules
// passed), so an operator sees the whole list at once instead of
// whack-a-mole reruns.
func (c *Checker) Err() error {
	return errors.Join(c.errs...)
}

// CheckpointInterval resolves the shared -checkpoint-interval semantic:
// a positive value is the period, zero or negative means "periodic
// checkpoints disabled" (the final shutdown checkpoint still happens).
// The second return reports whether periodic checkpointing is enabled;
// logf (when non-nil) gets the disabled notice so every command logs it
// the same way.
func CheckpointInterval(d time.Duration, logf func(format string, args ...any)) (time.Duration, bool) {
	if d > 0 {
		return d, true
	}
	if logf != nil {
		logf("periodic checkpoints disabled (-checkpoint-interval %v); a final checkpoint is still written on shutdown", d)
	}
	return 0, false
}
