package dot11

import (
	"bytes"
	"testing"
)

// FuzzDecode hammers the 802.11 frame parser with arbitrary bytes: it must
// never panic, and anything it accepts must re-encode to the same wire
// bytes (parse/serialize round-trip stability).
func FuzzDecode(f *testing.F) {
	seed1, _ := NewBeacon(MAC{1, 2, 3, 4, 5, 6}, "seed", 6, 42, 7).Encode()
	seed2, _ := NewProbeRequest(MAC{9, 8, 7, 6, 5, 4}, "", 1).Encode()
	f.Add(seed1)
	f.Add(seed2)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := Decode(data)
		if err != nil {
			return
		}
		re, err := frame.Encode()
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("round trip changed bytes:\n in: %x\nout: %x", data, re)
		}
	})
}

// FuzzDecodeRadiotap checks the radiotap splitter never panics and never
// returns a body that escapes the input buffer.
func FuzzDecodeRadiotap(f *testing.F) {
	frame, _ := NewProbeRequest(MAC{1}, "x", 0).Encode()
	f.Add(EncodeRadiotap(Radiotap{ChannelMHz: 2437, SignalDBm: -60, NoiseDBm: -95}, frame))
	f.Add([]byte{0, 0, 8, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, body, err := DecodeRadiotap(data)
		if err != nil {
			return
		}
		if len(body) > len(data) {
			t.Fatalf("body longer than input: %d > %d", len(body), len(data))
		}
	})
}
