package dot11

import (
	"bytes"
	"testing"
)

// FuzzDecode hammers the 802.11 frame parser with arbitrary bytes: it must
// never panic, and anything it accepts must re-encode to the same wire
// bytes (parse/serialize round-trip stability).
func FuzzDecode(f *testing.F) {
	seed1, _ := NewBeacon(MAC{1, 2, 3, 4, 5, 6}, "seed", 6, 42, 7).Encode()
	seed2, _ := NewProbeRequest(MAC{9, 8, 7, 6, 5, 4}, "", 1).Encode()
	f.Add(seed1)
	f.Add(seed2)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := Decode(data)
		if err != nil {
			return
		}
		re, err := frame.Encode()
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("round trip changed bytes:\n in: %x\nout: %x", data, re)
		}
	})
}

// FuzzFrameParse drives the full parse surface the observation pipeline
// touches on every capture: Decode, then for accepted frames the element
// accessors (SSID, Channel), channel math, and the encode round trip.
// None of it may panic, and derived values must stay in range.
func FuzzFrameParse(f *testing.F) {
	seed1, _ := NewBeacon(MAC{0xA0, 1, 2, 3, 4, 5}, "corp-net", 11, 100, 9).Encode()
	seed2, _ := NewProbeRequest(MAC{0xDD, 0, 0, 0, 0, 1}, "home", 3).Encode()
	seed3, _ := NewProbeResponse(MAC{0xA0, 9}, MAC{0xDD, 9}, "café ☕", 14, 2).Encode()
	f.Add(seed1)
	f.Add(seed2)
	f.Add(seed3)
	f.Add([]byte{0x40, 0x00, 0x00, 0x00}) // truncated probe request
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := Decode(data)
		if err != nil {
			return
		}
		if ssid, ok := frame.SSID(); ok && len(ssid) > 255 {
			t.Fatalf("SSID longer than an element can carry: %d bytes", len(ssid))
		}
		if ch, ok := frame.Channel(); ok {
			if freq, err := ChannelFreqHz(ch); err == nil {
				if freq < 2.4e9 || freq > 2.5e9 {
					t.Fatalf("channel %d mapped to out-of-band frequency %v", ch, freq)
				}
				for rx := 1; rx <= 14; rx++ {
					if ov := SpectralOverlap(ch, rx); ov < 0 || ov > 1 {
						t.Fatalf("SpectralOverlap(%d,%d) = %v out of [0,1]", ch, rx, ov)
					}
				}
			}
		}
		re, err := frame.Encode()
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("round trip changed bytes:\n in: %x\nout: %x", data, re)
		}
	})
}

// FuzzDecodeRadiotap checks the radiotap splitter never panics and never
// returns a body that escapes the input buffer.
func FuzzDecodeRadiotap(f *testing.F) {
	frame, _ := NewProbeRequest(MAC{1}, "x", 0).Encode()
	f.Add(EncodeRadiotap(Radiotap{ChannelMHz: 2437, SignalDBm: -60, NoiseDBm: -95}, frame))
	f.Add([]byte{0, 0, 8, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, body, err := DecodeRadiotap(data)
		if err != nil {
			return
		}
		if len(body) > len(data) {
			t.Fatalf("body longer than input: %d > %d", len(body), len(data))
		}
	})
}
