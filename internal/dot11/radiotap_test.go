package dot11

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestRadiotapRoundTrip(t *testing.T) {
	frame, err := NewBeacon(MAC{1, 2, 3, 4, 5, 6}, "net", 6, 99, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	rt := Radiotap{ChannelMHz: 2437, SignalDBm: -63, NoiseDBm: -95}
	raw := EncodeRadiotap(rt, frame)
	got, body, err := DecodeRadiotap(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got != rt {
		t.Errorf("radiotap = %+v, want %+v", got, rt)
	}
	if !bytes.Equal(body, frame) {
		t.Error("frame body corrupted")
	}
	if _, err := Decode(body); err != nil {
		t.Errorf("decoded body invalid: %v", err)
	}
}

func TestRadiotapChannelLookup(t *testing.T) {
	tests := []struct {
		mhz  uint16
		want int
	}{{2412, 1}, {2437, 6}, {2462, 11}, {2484, 14}, {5180, 0}, {0, 0}}
	for _, tt := range tests {
		rt := Radiotap{ChannelMHz: tt.mhz}
		if got := rt.Channel(); got != tt.want {
			t.Errorf("Channel(%d MHz) = %d, want %d", tt.mhz, got, tt.want)
		}
	}
}

func TestRadiotapDecodeErrors(t *testing.T) {
	if _, _, err := DecodeRadiotap([]byte{1, 2}); !errors.Is(err, ErrRadiotapShort) {
		t.Errorf("short: %v", err)
	}
	bad := make([]byte, 16)
	bad[0] = 2 // version
	if _, _, err := DecodeRadiotap(bad); !errors.Is(err, ErrRadiotapVersion) {
		t.Errorf("version: %v", err)
	}
	// Declared header length beyond the buffer.
	tooLong := make([]byte, 12)
	tooLong[2] = 200
	if _, _, err := DecodeRadiotap(tooLong); !errors.Is(err, ErrRadiotapShort) {
		t.Errorf("overlong: %v", err)
	}
}

func TestRadiotapForeignLayoutSkipped(t *testing.T) {
	// A foreign radiotap header (different present word) must be skipped
	// with zeroed metadata, keeping the frame intact.
	foreign := make([]byte, 12)
	foreign[2] = 12   // header length
	foreign[4] = 0x01 // present: TSFT only (not our layout)
	body := []byte{9, 9, 9}
	rt, got, err := DecodeRadiotap(append(foreign, body...))
	if err != nil {
		t.Fatal(err)
	}
	if rt != (Radiotap{}) {
		t.Errorf("foreign metadata should be zero, got %+v", rt)
	}
	if !bytes.Equal(got, body) {
		t.Errorf("body = %v", got)
	}
}

func TestRadiotapRoundTripProperty(t *testing.T) {
	f := func(mhz uint16, sig, noise int8, payload []byte) bool {
		rt := Radiotap{ChannelMHz: mhz, SignalDBm: sig, NoiseDBm: noise}
		got, body, err := DecodeRadiotap(EncodeRadiotap(rt, payload))
		return err == nil && got == rt && bytes.Equal(body, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
