package dot11

import (
	"fmt"
	"math"
)

// 2.4 GHz 802.11 b/g channel plan. Channels 1-13 are spaced 5 MHz apart and
// each signal occupies ~22 MHz, so only channels 1, 6 and 11 are mutually
// non-overlapping — the fact behind the paper's 3-card channel plan.
const (
	// MinChannel and MaxChannel bound the 2.4 GHz channels we model.
	MinChannel = 1
	MaxChannel = 11
	// ChannelWidthMHz is the occupied bandwidth of a DSSS/OFDM signal.
	ChannelWidthMHz = 22.0
	// channelSpacingMHz is the centre-frequency spacing.
	channelSpacingMHz = 5.0
)

// NonOverlapping is the classic non-interfering channel triple.
var NonOverlapping = []int{1, 6, 11}

// ChannelFreqHz returns the centre frequency of a 2.4 GHz channel.
func ChannelFreqHz(ch int) (float64, error) {
	if ch < 1 || ch > 14 {
		return 0, fmt.Errorf("dot11: invalid 2.4 GHz channel %d", ch)
	}
	if ch == 14 {
		return 2.484e9, nil
	}
	return 2.412e9 + float64(ch-1)*channelSpacingMHz*1e6, nil
}

// SpectralOverlap returns the fraction (0..1) of transmit energy on channel
// tx that falls inside a receiver filter centred on channel rx, using a
// rectangular 22 MHz spectral mask approximation. Same channel → 1;
// channels ≥ 5 apart → 0.
func SpectralOverlap(tx, rx int) float64 {
	sep := math.Abs(float64(tx-rx)) * channelSpacingMHz
	if sep >= ChannelWidthMHz {
		return 0
	}
	return (ChannelWidthMHz - sep) / ChannelWidthMHz
}

// LeakageDB returns the power penalty in dB a receiver on channel rx incurs
// when picking up a transmission on channel tx. 0 dB on-channel, +inf
// (represented as math.Inf) for non-overlapping channels.
//
// Beyond raw energy loss, off-channel signals are spectrally truncated and
// cannot be demodulated even at high power; callers model that with
// DecodableCrossChannel.
func LeakageDB(tx, rx int) float64 {
	ov := SpectralOverlap(tx, rx)
	if ov <= 0 {
		return math.Inf(1)
	}
	return -10 * math.Log10(ov)
}

// DecodableCrossChannel reports whether a frame transmitted on channel tx
// can be correctly decoded by a card listening on channel rx. Per the
// paper's Fig 9 experiment — a sender metres away from listeners on every
// channel — a card on a neighbouring channel picks up leaked energy but
// the spectrally truncated, carrier-offset signal defeats the demodulator
// regardless of how strong it is: decoding succeeds only on the exact
// channel.
func DecodableCrossChannel(tx, rx int) bool {
	return tx == rx
}

// ChannelPlan maps monitoring cards to channels and answers which observed
// channels each card can decode.
type ChannelPlan struct {
	// Cards holds the channel each monitoring card listens on.
	Cards []int
}

// DefaultPlan is the paper's 3-card plan monitoring channels 1, 6 and 11,
// which covers the 93.7% of APs on those channels.
func DefaultPlan() ChannelPlan {
	return ChannelPlan{Cards: append([]int(nil), NonOverlapping...)}
}

// FullPlan listens on all 11 channels (the expensive alternative).
func FullPlan() ChannelPlan {
	cards := make([]int, 0, MaxChannel)
	for ch := MinChannel; ch <= MaxChannel; ch++ {
		cards = append(cards, ch)
	}
	return ChannelPlan{Cards: cards}
}

// FolkPlan is the {3, 6, 9} plan the paper's Fig 9 debunks: it relies on
// adjacent-channel decoding, which does not work in practice.
func FolkPlan() ChannelPlan {
	return ChannelPlan{Cards: []int{3, 6, 9}}
}

// Covers reports whether any card in the plan can decode a transmission on
// channel tx.
func (p ChannelPlan) Covers(tx int) bool {
	for _, rx := range p.Cards {
		if DecodableCrossChannel(tx, rx) {
			return true
		}
	}
	return false
}
