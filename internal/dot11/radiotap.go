package dot11

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// This file implements the subset of the radiotap capture header real
// sniffing stacks prepend to 802.11 frames (LINKTYPE_IEEE802_11_RADIOTAP).
// Persisting captures with radiotap keeps the per-frame radio metadata —
// channel and signal strength — that the classic bare-802.11 link type
// throws away, so a pcap written by the sniffer can be re-ingested without
// losing the capture context.

// Radiotap present-word bits used here.
const (
	rtPresentFlags       = 1 << 1
	rtPresentChannel     = 1 << 3
	rtPresentAntennaSig  = 1 << 5
	rtPresentAntennaNois = 1 << 6
)

// Radiotap channel flags.
const (
	rtChanCCK  = 0x0020
	rtChan2GHz = 0x0080
)

// Radiotap is the capture metadata of one frame.
type Radiotap struct {
	// ChannelMHz is the capture channel's centre frequency in MHz.
	ChannelMHz uint16
	// SignalDBm is the antenna signal in dBm.
	SignalDBm int8
	// NoiseDBm is the antenna noise floor in dBm.
	NoiseDBm int8
}

// Radiotap errors.
var (
	ErrRadiotapShort   = errors.New("dot11: radiotap header truncated")
	ErrRadiotapVersion = errors.New("dot11: unsupported radiotap version")
)

// rtHeaderLen is the fixed size of the radiotap layout this package emits:
// 8-byte preamble + flags(1) + pad(1) + channel(4) + signal(1) + noise(1).
const rtHeaderLen = 16

// Channel returns the 2.4 GHz channel number of the radiotap frequency,
// or 0 when the frequency is not a 2.4 GHz channel centre.
func (r Radiotap) Channel() int {
	for ch := MinChannel; ch <= 14; ch++ {
		freq, err := ChannelFreqHz(ch)
		if err != nil {
			continue
		}
		if math.Abs(freq/1e6-float64(r.ChannelMHz)) < 0.5 {
			return ch
		}
	}
	return 0
}

// EncodeRadiotap prepends a radiotap header to an encoded 802.11 frame.
func EncodeRadiotap(rt Radiotap, frame []byte) []byte {
	buf := make([]byte, rtHeaderLen, rtHeaderLen+len(frame))
	// it_version=0, it_pad=0.
	binary.LittleEndian.PutUint16(buf[2:4], rtHeaderLen)
	binary.LittleEndian.PutUint32(buf[4:8],
		rtPresentFlags|rtPresentChannel|rtPresentAntennaSig|rtPresentAntennaNois)
	buf[8] = 0 // flags: nothing special; FCS kept in frame body
	// buf[9] is alignment padding: the channel field is u16-aligned.
	binary.LittleEndian.PutUint16(buf[10:12], rt.ChannelMHz)
	binary.LittleEndian.PutUint16(buf[12:14], rtChan2GHz|rtChanCCK)
	buf[14] = byte(rt.SignalDBm)
	buf[15] = byte(rt.NoiseDBm)
	return append(buf, frame...)
}

// DecodeRadiotap splits a radiotap-prefixed capture into its metadata and
// the raw 802.11 frame. It tolerates any header length declared by the
// preamble and any present-word layout this package emits; headers from
// other producers are skipped with zeroed metadata when their layout is
// not understood.
func DecodeRadiotap(b []byte) (Radiotap, []byte, error) {
	if len(b) < 8 {
		return Radiotap{}, nil, ErrRadiotapShort
	}
	if b[0] != 0 {
		return Radiotap{}, nil, fmt.Errorf("%w: version %d", ErrRadiotapVersion, b[0])
	}
	hdrLen := int(binary.LittleEndian.Uint16(b[2:4]))
	if hdrLen < 8 || hdrLen > len(b) {
		return Radiotap{}, nil, ErrRadiotapShort
	}
	present := binary.LittleEndian.Uint32(b[4:8])
	var rt Radiotap
	// Only parse the exact layout this package writes.
	if present == rtPresentFlags|rtPresentChannel|rtPresentAntennaSig|rtPresentAntennaNois &&
		hdrLen >= rtHeaderLen {
		rt.ChannelMHz = binary.LittleEndian.Uint16(b[10:12])
		rt.SignalDBm = int8(b[14])
		rt.NoiseDBm = int8(b[15])
	}
	return rt, b[hdrLen:], nil
}
