// Package dot11 implements the subset of IEEE 802.11 needed by the digital
// Marauder's map capture pipeline: MAC addressing, management frame
// encoding/decoding (beacon, probe request, probe response), information
// elements, the CRC-32 frame check sequence, and the 2.4 GHz channel plan
// with its spectral-overlap structure.
//
// Frames produced by Encode round-trip through Decode bit-exactly, and the
// wire format follows the standard closely enough that the frames are
// recognizable to standard tooling when written to pcap files
// (LinkType IEEE802_11).
package dot11

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// MAC is a 48-bit IEEE 802 MAC address.
type MAC [6]byte

// String renders the address in the canonical colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x",
		m[0], m[1], m[2], m[3], m[4], m[5])
}

// ParseMAC parses a colon-separated MAC address.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	n, err := fmt.Sscanf(s, "%02x:%02x:%02x:%02x:%02x:%02x",
		&m[0], &m[1], &m[2], &m[3], &m[4], &m[5])
	if err != nil || n != 6 {
		return MAC{}, fmt.Errorf("dot11: invalid MAC %q", s)
	}
	return m, nil
}

// Broadcast is the all-ones broadcast address used as the destination of
// probe requests.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// FrameType is the 802.11 type field (2 bits).
type FrameType uint8

// Frame types.
const (
	TypeManagement FrameType = 0
	TypeControl    FrameType = 1
	TypeData       FrameType = 2
)

// Subtype is the 802.11 subtype field (4 bits); values are for management
// frames.
type Subtype uint8

// Management frame subtypes used by the capture pipeline.
const (
	SubtypeAssocReq     Subtype = 0
	SubtypeAssocResp    Subtype = 1
	SubtypeProbeRequest Subtype = 4
	SubtypeProbeResp    Subtype = 5
	SubtypeBeacon       Subtype = 8
	SubtypeDeauth       Subtype = 12
)

// String implements fmt.Stringer.
func (s Subtype) String() string {
	switch s {
	case SubtypeAssocReq:
		return "AssocReq"
	case SubtypeAssocResp:
		return "AssocResp"
	case SubtypeProbeRequest:
		return "ProbeReq"
	case SubtypeProbeResp:
		return "ProbeResp"
	case SubtypeBeacon:
		return "Beacon"
	case SubtypeDeauth:
		return "Deauth"
	default:
		return fmt.Sprintf("Subtype(%d)", uint8(s))
	}
}

// Element IDs of the information elements the pipeline understands.
const (
	EIDSSID           = 0
	EIDSupportedRates = 1
	EIDDSParameterSet = 3 // current channel
)

// IE is a type-length-value information element.
type IE struct {
	ID   uint8
	Data []byte
}

// Frame is a decoded 802.11 management frame. Addr1 is the destination,
// Addr2 the source (transmitter), Addr3 the BSSID.
type Frame struct {
	Type     FrameType
	Subtype  Subtype
	Duration uint16
	Addr1    MAC
	Addr2    MAC
	Addr3    MAC
	Seq      uint16 // sequence number (12 bits)
	Frag     uint8  // fragment number (4 bits)

	// Management-frame fixed fields (beacon / probe response only).
	Timestamp      uint64
	BeaconInterval uint16
	Capability     uint16

	// IEs are the information elements in wire order.
	IEs []IE
}

// Decoding errors.
var (
	ErrShortFrame = errors.New("dot11: frame too short")
	ErrBadFCS     = errors.New("dot11: frame check sequence mismatch")
	ErrNotMgmt    = errors.New("dot11: not a management frame")
)

const mgmtHeaderLen = 24
const fixedFieldsLen = 12 // timestamp + beacon interval + capability

// hasFixedFields reports whether the subtype carries the 12-byte fixed
// field block.
func (f *Frame) hasFixedFields() bool {
	return f.Subtype == SubtypeBeacon || f.Subtype == SubtypeProbeResp
}

// SSID returns the SSID element's value and whether one is present.
func (f *Frame) SSID() (string, bool) {
	for _, ie := range f.IEs {
		if ie.ID == EIDSSID {
			return string(ie.Data), true
		}
	}
	return "", false
}

// Channel returns the DS Parameter Set channel and whether one is present.
func (f *Frame) Channel() (int, bool) {
	for _, ie := range f.IEs {
		if ie.ID == EIDDSParameterSet && len(ie.Data) == 1 {
			return int(ie.Data[0]), true
		}
	}
	return 0, false
}

// Encode serializes the frame to wire format including the trailing FCS.
func (f *Frame) Encode() ([]byte, error) {
	if f.Type != TypeManagement {
		return nil, ErrNotMgmt
	}
	size := mgmtHeaderLen
	if f.hasFixedFields() {
		size += fixedFieldsLen
	}
	for _, ie := range f.IEs {
		if len(ie.Data) > 255 {
			return nil, fmt.Errorf("dot11: IE %d data too long (%d bytes)", ie.ID, len(ie.Data))
		}
		size += 2 + len(ie.Data)
	}
	size += 4 // FCS
	buf := make([]byte, 0, size)

	fc := uint16(f.Type)<<2 | uint16(f.Subtype)<<4 // version 0
	buf = binary.LittleEndian.AppendUint16(buf, fc)
	buf = binary.LittleEndian.AppendUint16(buf, f.Duration)
	buf = append(buf, f.Addr1[:]...)
	buf = append(buf, f.Addr2[:]...)
	buf = append(buf, f.Addr3[:]...)
	seqCtl := f.Seq<<4 | uint16(f.Frag&0x0f)
	buf = binary.LittleEndian.AppendUint16(buf, seqCtl)

	if f.hasFixedFields() {
		buf = binary.LittleEndian.AppendUint64(buf, f.Timestamp)
		buf = binary.LittleEndian.AppendUint16(buf, f.BeaconInterval)
		buf = binary.LittleEndian.AppendUint16(buf, f.Capability)
	}
	for _, ie := range f.IEs {
		buf = append(buf, ie.ID, byte(len(ie.Data)))
		buf = append(buf, ie.Data...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf, nil
}

// Decode parses a wire-format frame, verifying the FCS.
func Decode(b []byte) (*Frame, error) {
	if len(b) < mgmtHeaderLen+4 {
		return nil, ErrShortFrame
	}
	payload, fcsBytes := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(fcsBytes) {
		return nil, ErrBadFCS
	}
	fc := binary.LittleEndian.Uint16(payload[0:2])
	f := &Frame{
		Type:     FrameType(fc >> 2 & 0x3),
		Subtype:  Subtype(fc >> 4 & 0xf),
		Duration: binary.LittleEndian.Uint16(payload[2:4]),
	}
	if f.Type != TypeManagement {
		return nil, ErrNotMgmt
	}
	copy(f.Addr1[:], payload[4:10])
	copy(f.Addr2[:], payload[10:16])
	copy(f.Addr3[:], payload[16:22])
	seqCtl := binary.LittleEndian.Uint16(payload[22:24])
	f.Seq = seqCtl >> 4
	f.Frag = uint8(seqCtl & 0xf)

	rest := payload[mgmtHeaderLen:]
	if f.hasFixedFields() {
		if len(rest) < fixedFieldsLen {
			return nil, ErrShortFrame
		}
		f.Timestamp = binary.LittleEndian.Uint64(rest[0:8])
		f.BeaconInterval = binary.LittleEndian.Uint16(rest[8:10])
		f.Capability = binary.LittleEndian.Uint16(rest[10:12])
		rest = rest[fixedFieldsLen:]
	}
	for len(rest) > 0 {
		if len(rest) < 2 {
			return nil, ErrShortFrame
		}
		id, l := rest[0], int(rest[1])
		if len(rest) < 2+l {
			return nil, ErrShortFrame
		}
		data := make([]byte, l)
		copy(data, rest[2:2+l])
		f.IEs = append(f.IEs, IE{ID: id, Data: data})
		rest = rest[2+l:]
	}
	return f, nil
}

// NewProbeRequest builds a broadcast probe request from src for the given
// SSID ("" for the wildcard directed at any AP).
func NewProbeRequest(src MAC, ssid string, seq uint16) *Frame {
	return &Frame{
		Type:    TypeManagement,
		Subtype: SubtypeProbeRequest,
		Addr1:   Broadcast,
		Addr2:   src,
		Addr3:   Broadcast,
		Seq:     seq,
		IEs: []IE{
			{ID: EIDSSID, Data: []byte(ssid)},
			{ID: EIDSupportedRates, Data: []byte{0x82, 0x84, 0x8b, 0x96}},
		},
	}
}

// NewProbeResponse builds an AP's unicast response to a probe request.
func NewProbeResponse(ap, dst MAC, ssid string, channel int, seq uint16) *Frame {
	return &Frame{
		Type:           TypeManagement,
		Subtype:        SubtypeProbeResp,
		Addr1:          dst,
		Addr2:          ap,
		Addr3:          ap,
		Seq:            seq,
		BeaconInterval: 100,
		Capability:     0x0401,
		IEs: []IE{
			{ID: EIDSSID, Data: []byte(ssid)},
			{ID: EIDSupportedRates, Data: []byte{0x82, 0x84, 0x8b, 0x96}},
			{ID: EIDDSParameterSet, Data: []byte{byte(channel)}},
		},
	}
}

// NewBeacon builds an AP beacon.
func NewBeacon(ap MAC, ssid string, channel int, timestamp uint64, seq uint16) *Frame {
	return &Frame{
		Type:           TypeManagement,
		Subtype:        SubtypeBeacon,
		Addr1:          Broadcast,
		Addr2:          ap,
		Addr3:          ap,
		Seq:            seq,
		Timestamp:      timestamp,
		BeaconInterval: 100,
		Capability:     0x0401,
		IEs: []IE{
			{ID: EIDSSID, Data: []byte(ssid)},
			{ID: EIDSupportedRates, Data: []byte{0x82, 0x84, 0x8b, 0x96}},
			{ID: EIDDSParameterSet, Data: []byte{byte(channel)}},
		},
	}
}
