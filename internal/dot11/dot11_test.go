package dot11

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMACString(t *testing.T) {
	m := MAC{0x00, 0x1b, 0x2c, 0x3d, 0x4e, 0x5f}
	want := "00:1b:2c:3d:4e:5f"
	if got := m.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	parsed, err := ParseMAC(want)
	if err != nil {
		t.Fatal(err)
	}
	if parsed != m {
		t.Errorf("ParseMAC = %v, want %v", parsed, m)
	}
	if _, err := ParseMAC("nonsense"); err == nil {
		t.Error("want error for bad MAC")
	}
}

func TestMACRoundTripProperty(t *testing.T) {
	f := func(b [6]byte) bool {
		m := MAC(b)
		parsed, err := ParseMAC(m.String())
		return err == nil && parsed == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProbeRequestRoundTrip(t *testing.T) {
	src := MAC{2, 0, 0, 0, 0, 7}
	f := NewProbeRequest(src, "eduroam", 42)
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Subtype != SubtypeProbeRequest || got.Addr2 != src || got.Seq != 42 {
		t.Errorf("decoded %+v", got)
	}
	if ssid, ok := got.SSID(); !ok || ssid != "eduroam" {
		t.Errorf("SSID = %q, %v", ssid, ok)
	}
	if got.Addr1 != Broadcast {
		t.Error("probe request must be broadcast")
	}
}

func TestBeaconRoundTrip(t *testing.T) {
	ap := MAC{0, 0x1b, 0, 0, 0, 1}
	f := NewBeacon(ap, "UML-North", 6, 123456789, 7)
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Timestamp != 123456789 || got.BeaconInterval != 100 {
		t.Errorf("fixed fields: %+v", got)
	}
	if ch, ok := got.Channel(); !ok || ch != 6 {
		t.Errorf("channel = %d, %v", ch, ok)
	}
	if !reflect.DeepEqual(got.IEs, f.IEs) {
		t.Errorf("IEs differ: %v vs %v", got.IEs, f.IEs)
	}
}

func TestProbeResponseRoundTrip(t *testing.T) {
	ap := MAC{0, 1, 2, 3, 4, 5}
	dst := MAC{9, 8, 7, 6, 5, 4}
	f := NewProbeResponse(ap, dst, "GWU", 11, 3)
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr1 != dst || got.Addr2 != ap || got.Addr3 != ap {
		t.Errorf("addresses: %+v", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); !errors.Is(err, ErrShortFrame) {
		t.Errorf("short: %v", err)
	}
	f := NewProbeRequest(MAC{1}, "x", 0)
	b, _ := f.Encode()
	b[5] ^= 0xff // corrupt
	if _, err := Decode(b); !errors.Is(err, ErrBadFCS) {
		t.Errorf("corrupt: %v", err)
	}
	// Non-management frame control.
	raw := make([]byte, 28)
	raw[0] = 0x08 // type = data
	// fix FCS
	b2 := append(raw[:24:24], 0, 0, 0, 0)
	copy(b2[24:], fcsOf(b2[:24]))
	if _, err := Decode(b2); !errors.Is(err, ErrNotMgmt) {
		t.Errorf("data frame: %v", err)
	}
}

func fcsOf(b []byte) []byte {
	f := NewProbeRequest(MAC{}, "", 0)
	_ = f
	// compute crc32 IEEE little endian
	var out [4]byte
	c := crc32IEEE(b)
	out[0] = byte(c)
	out[1] = byte(c >> 8)
	out[2] = byte(c >> 16)
	out[3] = byte(c >> 24)
	return out[:]
}

func crc32IEEE(b []byte) uint32 {
	const poly = 0xedb88320
	crc := ^uint32(0)
	for _, x := range b {
		crc ^= uint32(x)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
	}
	return ^crc
}

func TestEncodeRejectsNonMgmt(t *testing.T) {
	f := &Frame{Type: TypeData}
	if _, err := f.Encode(); !errors.Is(err, ErrNotMgmt) {
		t.Errorf("err = %v", err)
	}
}

func TestEncodeRejectsOversizeIE(t *testing.T) {
	f := NewProbeRequest(MAC{}, "", 0)
	f.IEs = append(f.IEs, IE{ID: 221, Data: make([]byte, 300)})
	if _, err := f.Encode(); err == nil {
		t.Error("want error for oversized IE")
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(src, bssid [6]byte, ssid string, seq uint16, ts uint64) bool {
		if len(ssid) > 32 {
			ssid = ssid[:32]
		}
		fr := NewBeacon(MAC(src), ssid, 6, ts, seq%4096)
		fr.Addr3 = MAC(bssid)
		b, err := fr.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(b)
		if err != nil {
			return false
		}
		s, _ := got.SSID()
		return got.Addr2 == MAC(src) && got.Addr3 == MAC(bssid) &&
			s == ssid && got.Seq == seq%4096 && got.Timestamp == ts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeTruncatedIE(t *testing.T) {
	f := NewProbeRequest(MAC{1}, "abc", 0)
	b, _ := f.Encode()
	// Chop into the IE region and re-seal with a fresh FCS so only the IE
	// parser can complain.
	cut := b[:len(b)-4-2]
	resealed := append(append([]byte{}, cut...), fcsOf(cut)...)
	if _, err := Decode(resealed); !errors.Is(err, ErrShortFrame) {
		t.Errorf("err = %v, want ErrShortFrame", err)
	}
}

func TestSubtypeString(t *testing.T) {
	if SubtypeBeacon.String() != "Beacon" || SubtypeProbeRequest.String() != "ProbeReq" {
		t.Error("subtype strings wrong")
	}
	if Subtype(15).String() != "Subtype(15)" {
		t.Error("unknown subtype string wrong")
	}
}

func TestChannelFreq(t *testing.T) {
	tests := []struct {
		ch   int
		want float64
	}{{1, 2.412e9}, {6, 2.437e9}, {11, 2.462e9}, {14, 2.484e9}}
	for _, tt := range tests {
		got, err := ChannelFreqHz(tt.ch)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("ch %d = %v, want %v", tt.ch, got, tt.want)
		}
	}
	if _, err := ChannelFreqHz(0); err == nil {
		t.Error("want error for channel 0")
	}
	if _, err := ChannelFreqHz(15); err == nil {
		t.Error("want error for channel 15")
	}
}

func TestSpectralOverlap(t *testing.T) {
	if got := SpectralOverlap(6, 6); got != 1 {
		t.Errorf("same channel overlap = %v", got)
	}
	if got := SpectralOverlap(1, 6); got != 0 {
		t.Errorf("1 vs 6 overlap = %v, want 0", got)
	}
	// Adjacent channels overlap substantially but not fully.
	ov := SpectralOverlap(6, 7)
	if ov <= 0.5 || ov >= 1 {
		t.Errorf("adjacent overlap = %v", ov)
	}
	if SpectralOverlap(6, 7) != SpectralOverlap(7, 6) {
		t.Error("overlap must be symmetric")
	}
}

func TestLeakage(t *testing.T) {
	if got := LeakageDB(6, 6); got != 0 {
		t.Errorf("on-channel leakage = %v", got)
	}
	if !math.IsInf(LeakageDB(1, 11), 1) {
		t.Error("far channels should have infinite leakage")
	}
	if l := LeakageDB(6, 8); l <= 0 || math.IsInf(l, 1) {
		t.Errorf("near-channel leakage = %v", l)
	}
}

// The paper's Fig 9: a card on a neighbouring channel recognizes few or no
// packets even though energy leaks.
func TestDecodableCrossChannel(t *testing.T) {
	if !DecodableCrossChannel(11, 11) {
		t.Error("on-channel must decode")
	}
	if DecodableCrossChannel(11, 10) {
		t.Error("adjacent channel must not decode, however strong the leak")
	}
	if DecodableCrossChannel(11, 9) {
		t.Error(">=2 channels away must never decode")
	}
}

func TestChannelPlans(t *testing.T) {
	def := DefaultPlan()
	if !reflect.DeepEqual(def.Cards, []int{1, 6, 11}) {
		t.Errorf("default plan = %v", def.Cards)
	}
	if !def.Covers(6) || def.Covers(3) {
		t.Error("default plan coverage wrong")
	}
	full := FullPlan()
	if len(full.Cards) != 11 {
		t.Errorf("full plan = %v", full.Cards)
	}
	for ch := MinChannel; ch <= MaxChannel; ch++ {
		if !full.Covers(ch) {
			t.Errorf("full plan must cover channel %d", ch)
		}
	}
	// The folk {3,6,9} plan fails to decode channels 1 and 11 (Fig 9's
	// conclusion).
	folk := FolkPlan()
	if folk.Covers(1) || folk.Covers(11) {
		t.Error("folk plan should not cover the edge channels")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	f := NewBeacon(MAC{1, 2, 3, 4, 5, 6}, "ssid", 1, 99, 1)
	a, _ := f.Encode()
	b, _ := f.Encode()
	if !bytes.Equal(a, b) {
		t.Error("Encode must be deterministic")
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	f := NewBeacon(MAC{1, 2, 3, 4, 5, 6}, "UML-North-Campus", 6, 12345, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		raw, err := f.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// Decode must never panic, whatever bytes arrive off the air.
func TestDecodeNeverPanicsProperty(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %x: %v", b, r)
			}
		}()
		_, _ = Decode(b)
		_, _, _ = DecodeRadiotap(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
