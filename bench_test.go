package repro

// One benchmark per table/figure of the paper's evaluation section. Each
// bench regenerates the figure from scratch and reports the figure's
// headline quantity as a custom metric, so `go test -bench=. -benchmem`
// doubles as the reproduction's results table.

import (
	"context"
	"reflect"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rf"
	"repro/internal/sim"
	"repro/internal/telemetry/ftdc"
)

// lastFloat pulls a float out of a table cell, for reporting headline
// metrics from the regenerated figure.
func lastFloat(b *testing.B, t experiments.Table, row, col int) float64 {
	b.Helper()
	if row < 0 {
		row += len(t.Rows)
	}
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q: %v", row, col, t.Rows[row][col], err)
	}
	return v
}

func BenchmarkFig2IntersectedAreaVsK(b *testing.B) {
	var t experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.Fig2(1000, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	// CA at k=10, the paper's reference operating point.
	b.ReportMetric(lastFloat(b, t, 9, 1), "CA@k=10")
}

func BenchmarkFig3AreaVsRadius(b *testing.B) {
	var t experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.Fig3(5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastFloat(b, t, -1, 2), "CA@r=3")
}

func BenchmarkFig4BiasedCentroid(b *testing.B) {
	var t experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.Fig4(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastFloat(b, t, -1, 1), "centroid_err_m")
	b.ReportMetric(lastFloat(b, t, -1, 2), "mloc_err_m")
}

func BenchmarkFig5AreaVsEstimatedR(b *testing.B) {
	var t experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.Fig5(1000, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastFloat(b, t, -1, 1), "CA@R=3r")
}

func BenchmarkFig6CoverageProb(b *testing.B) {
	var t experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.Fig6(20000, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastFloat(b, t, 2, 1), "p@R=0.9r")
}

func BenchmarkFig8ChannelDistribution(b *testing.B) {
	var t experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.Fig8(1000, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastFloat(b, t, -1, 2)*100, "pct_1_6_11")
}

func BenchmarkFig9ChannelLeakage(b *testing.B) {
	var t experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.Fig9(200, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Recognition on the on-channel card (row for channel 11) and the
	// adjacent channel 10.
	b.ReportMetric(lastFloat(b, t, 10, 2), "frac_ch11")
	b.ReportMetric(lastFloat(b, t, 9, 2), "frac_ch10")
}

func BenchmarkFig10ProbingMobiles(b *testing.B) {
	var t experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.Figs10And11(150, 60, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Highest daily probing percentage (paper peaks at 91.61%).
	peak := 0.0
	for r := range t.Rows {
		if v := lastFloat(b, t, r, 4); v > peak {
			peak = v
		}
	}
	b.ReportMetric(peak, "peak_pct_probing")
}

func BenchmarkFig12CoverageRadius(b *testing.B) {
	var t experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.Fig12()
		if err != nil {
			b.Fatal(err)
		}
	}
	// Urban coverage radius of the full LNA chain (paper: ~1000 m).
	b.ReportMetric(lastFloat(b, t, 3, 2), "lna_urban_m")
}

// campusBench shares one campus run across the Figs 13-17 benches within a
// single bench invocation.
func campusBench(b *testing.B, fig func(*experiments.CampusRun) (experiments.Table, error)) experiments.Table {
	b.Helper()
	var t experiments.Table
	for i := 0; i < b.N; i++ {
		run, err := experiments.RunCampus(experiments.CampusConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		t, err = fig(run)
		if err != nil {
			b.Fatal(err)
		}
	}
	return t
}

func BenchmarkFig13ErrorHistogram(b *testing.B) {
	t := campusBench(b, experiments.Fig13)
	b.ReportMetric(lastFloat(b, t, -1, 1), "mloc_mean_m")
	b.ReportMetric(lastFloat(b, t, -1, 2), "aprad_mean_m")
	b.ReportMetric(lastFloat(b, t, -1, 3), "centroid_mean_m")
}

func BenchmarkFig14ErrorVsK(b *testing.B) {
	t := campusBench(b, experiments.Fig14)
	b.ReportMetric(lastFloat(b, t, 0, 1), "mloc@min_k")
	b.ReportMetric(lastFloat(b, t, -1, 1), "mloc@max_k")
}

func BenchmarkFig15AreaVsK(b *testing.B) {
	t := campusBench(b, experiments.Fig15)
	b.ReportMetric(lastFloat(b, t, 0, 1), "mloc_area_m2")
	b.ReportMetric(lastFloat(b, t, 0, 2), "aprad_area_m2")
}

func BenchmarkFig16CoverageVsK(b *testing.B) {
	t := campusBench(b, experiments.Fig16)
	b.ReportMetric(lastFloat(b, t, 0, 1), "mloc_cov")
	b.ReportMetric(lastFloat(b, t, 0, 2), "aprad_cov")
}

func BenchmarkFig17APLocTraining(b *testing.B) {
	t := campusBench(b, experiments.Fig17)
	// Error at 19 training tuples — the paper's headline (12.21 m).
	for r, row := range t.Rows {
		if row[0] == "19" {
			b.ReportMetric(lastFloat(b, t, r, 1), "aploc@19tuples_m")
		}
	}
	b.ReportMetric(lastFloat(b, t, -1, 1), "aploc@max_tuples_m")
}

func BenchmarkThm1LinkBudget(b *testing.B) {
	var r float64
	for i := 0; i < b.N; i++ {
		for _, chain := range rf.Fig12Chains() {
			r = rf.CoverageRadius(rf.TypicalMobile, chain)
		}
	}
	b.ReportMetric(r, "lna_freespace_m")
}

// Ablation: the paper's 3-card channel plan versus the 11-card plan and
// the debunked {3,6,9} folk plan — fraction of a campus's APs whose
// channel each plan can decode.
func BenchmarkAblationChannelPlans(b *testing.B) {
	var t experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.AblationChannelPlans(1000, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for r, row := range t.Rows {
		b.ReportMetric(lastFloat(b, t, r, 2)*100, "pct_"+row[0])
	}
}

// Ablation: M-Loc's vertex centroid versus the Monte-Carlo region-area
// centroid — accuracy and cost of the paper's estimator choice.
func BenchmarkAblationCentroidEstimators(b *testing.B) {
	var t experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.AblationCentroidEstimators(300, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastFloat(b, t, 0, 1), "vertex_err_m")
	b.ReportMetric(lastFloat(b, t, 1, 1), "area_err_m")
}

// Ablation: AP-Rad's LP radius estimation versus fixed upper-bound and
// fixed lower-bound radii (Theorem 3's two failure modes).
func BenchmarkAblationRadiusEstimators(b *testing.B) {
	var t experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.AblationRadiusEstimators(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for r, row := range t.Rows {
		b.ReportMetric(lastFloat(b, t, r, 1), row[0]+"_err_m")
	}
}

// Extension: countermeasure evaluation (the camouflaging protocols the
// paper's conclusion calls for).
func BenchmarkExtensionDefenses(b *testing.B) {
	var t experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.DefenseEvaluation(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for r, row := range t.Rows {
		b.ReportMetric(lastFloat(b, t, r, 1), "fixes_"+row[0])
	}
}

// Extension: set-only attack vs the RSS self-positioning baselines from
// the paper's related-work taxonomy.
func BenchmarkExtensionPositioningComparison(b *testing.B) {
	var t experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.PositioningComparison(150, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for r, row := range t.Rows {
		b.ReportMetric(lastFloat(b, t, r, 1), row[0]+"_err_m")
	}
}

// Extension: coverage scaling with a fleet of sniffer sites.
func BenchmarkExtensionFleetCoverage(b *testing.B) {
	var t experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.FleetCoverage(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastFloat(b, t, 0, 1), "observed_1site")
	b.ReportMetric(lastFloat(b, t, 1, 1), "observed_2sites")
}

// engineBenchWorld builds a deterministic 200-device campus: a 12×12 AP
// grid and one observation window in which every device has probed the
// APs whose discs cover it. Returns the knowledge base and a pre-filled
// store, shared read-only by every engine under benchmark.
func engineBenchWorld(b *testing.B) (core.Knowledge, *obs.Store) {
	b.Helper()
	const (
		nSide   = 12
		spacing = 70.0
		apRange = 100.0
		nDevs   = 200
	)
	aps := make([]core.APInfo, 0, nSide*nSide)
	for i := 0; i < nSide*nSide; i++ {
		pos := geom.Pt(
			float64(i%nSide)*spacing-float64(nSide-1)*spacing/2,
			float64(i/nSide)*spacing-float64(nSide-1)*spacing/2,
		)
		aps = append(aps, core.APInfo{BSSID: sim.NewMAC(0xA9, i), Pos: pos, MaxRange: apRange})
	}
	know := core.NewKnowledge(aps)
	store := obs.NewStore()
	for d := 0; d < nDevs; d++ {
		dev := sim.NewMAC(0xDD, d)
		pos := geom.Pt(
			float64((d*7919)%700)-350,
			float64((d*104729)%700)-350,
		)
		seq := uint16(1)
		for _, ap := range aps {
			if ap.Pos.Dist(pos) <= ap.MaxRange {
				store.Ingest(50, dot11.NewProbeResponse(ap.BSSID, dev, "", 1, seq), true)
				seq++
			}
		}
	}
	return know, store
}

// BenchmarkEngineSnapshot measures one full map frame — localizing every
// observed device in the window — across the engine's operating modes:
// sequential vs a worker pool, and with the Γ cache cold-disabled vs warm.
// Parallel and sequential frames are checked identical before timing.
func BenchmarkEngineSnapshot(b *testing.B) {
	know, store := engineBenchWorld(b)
	newEngine := func(workers, cacheSize int) *engine.Engine {
		eng, err := engine.New(engine.Config{
			Know: know, Store: store, WindowSec: 60,
			Workers: workers, CacheSize: cacheSize,
		})
		if err != nil {
			b.Fatal(err)
		}
		return eng
	}
	nWorkers := runtime.GOMAXPROCS(0)
	if nWorkers < 2 {
		nWorkers = 4 // still exercises the pooled path on a 1-CPU box
	}
	seqFrame := newEngine(1, -1).Snapshot(50)
	parFrame := newEngine(nWorkers, -1).Snapshot(50)
	if !reflect.DeepEqual(seqFrame, parFrame) {
		b.Fatal("parallel snapshot differs from sequential")
	}

	for _, bc := range []struct {
		name      string
		workers   int
		cacheSize int
	}{
		{"sequential/uncached", 1, -1},
		{"parallel/uncached", nWorkers, -1},
		{"sequential/cached", 1, 0},
		{"parallel/cached", nWorkers, 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			eng := newEngine(bc.workers, bc.cacheSize)
			var frame map[dot11.MAC]core.Estimate
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				frame = eng.Snapshot(50)
			}
			b.ReportMetric(float64(len(frame)), "located")
			st := eng.Stats()
			if st.Fixes > 0 {
				b.ReportMetric(float64(st.CacheHits)/float64(st.Fixes), "hit_rate")
			}
		})
	}
}

// BenchmarkEngineSnapshotFTDC measures the flight recorder's overhead on
// the serving path: the same full-frame loop as BenchmarkEngineSnapshot,
// with the recorder off (its nil no-op state) versus sampling the whole
// process registry every second in the background — the production
// configuration. The two ns/op figures must stay within a few percent of
// each other: recording is asynchronous, so a frame never waits on it.
func BenchmarkEngineSnapshotFTDC(b *testing.B) {
	know, store := engineBenchWorld(b)
	newEngine := func() *engine.Engine {
		eng, err := engine.New(engine.Config{
			Know: know, Store: store, WindowSec: 60, Workers: 1, CacheSize: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		return eng
	}
	frameLoop := func(b *testing.B, rec *ftdc.Recorder) {
		eng := newEngine()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng.Snapshot(50)
			// The disabled state costs exactly this nil check per frame.
			if rec != nil {
				_ = rec.Status()
			}
		}
	}
	b.Run("recorder=off", func(b *testing.B) { frameLoop(b, nil) })
	b.Run("recorder=1s", func(b *testing.B) {
		rec, err := ftdc.New(ftdc.Config{Dir: b.TempDir(), Interval: time.Second})
		if err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() { rec.Run(ctx); close(done) }()
		frameLoop(b, rec)
		b.StopTimer()
		cancel()
		<-done
		if err := rec.Close(); err != nil {
			b.Fatal(err)
		}
	})
}

// Ablation: the spherical worst-case model vs obstructed/derated reality
// (DESIGN.md §5's propagation-model ablation).
func BenchmarkAblationPropagation(b *testing.B) {
	var t experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.AblationPropagation(300, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for r, row := range t.Rows {
		b.ReportMetric(lastFloat(b, t, r, 2), "coverage_"+row[0])
	}
}

// churnWorld builds the tracked-device churn fixture shared by the
// BenchmarkTrackChurn sub-benchmarks: nAPs on a line 30 m apart with
// 150 m ranges, the sliding k-AP Γ for every step, and an observation
// store in which the device is heard by exactly window s's APs at
// t = s·30.
func churnWorld(nAPs, k int) (core.Knowledge, [][]dot11.MAC, *obs.Store, dot11.MAC) {
	aps := make([]core.APInfo, 0, nAPs)
	for i := 0; i < nAPs; i++ {
		aps = append(aps, core.APInfo{
			BSSID:    sim.NewMAC(0xC8, i+1),
			Pos:      geom.Pt(float64(i)*30, 0),
			MaxRange: 150,
		})
	}
	know := core.NewKnowledge(aps)
	gammas := make([][]dot11.MAC, 0, nAPs-k+1)
	for s := 0; s+k <= nAPs; s++ {
		gamma := make([]dot11.MAC, 0, k)
		for i := s; i < s+k; i++ {
			gamma = append(gamma, aps[i].BSSID)
		}
		gammas = append(gammas, gamma)
	}
	store := obs.NewStore()
	dev := sim.NewMAC(0xDE, 1)
	seq := uint16(1)
	for s, gamma := range gammas {
		for _, ap := range gamma {
			store.Ingest(float64(s)*30, dot11.NewProbeResponse(ap, dev, "", 1, seq), true)
			seq++
		}
	}
	return know, gammas, store, dev
}

// BenchmarkTrackChurn measures the incremental intersection kernel on the
// tracked-device churn pattern — Γ of k discs sliding ±1 AP per fix, the
// cache-hostile workload the kernel exists for. The kernel pair measures
// the full per-fix region payload of a traced tracked fix — the position
// estimate plus the intersected area that finishFix records for every
// sampled fix — on both paths: incremental (core.MLocTracked diffing one
// reused Region, area served from the same live region) versus full
// recompute (core.MLoc plus core.RegionArea re-intersecting all k discs).
// scripts/bench_churn.sh enforces the ≥5× speedup gate on exactly this
// pair. The engine pair runs the same contrast end to end through Track
// with caching disabled, where shared per-fix overhead (window queries,
// trace plumbing) dilutes but must not erase the win.
func BenchmarkTrackChurn(b *testing.B) {
	const nAPs, k = 40, 8
	know, gammas, store, dev := churnWorld(nAPs, k)

	// The kernel pair walks the windows ping-pong (slide right to the end,
	// then back) so every measured step is a genuine ±1 Γ churn; a plain
	// modulo walk would teleport from the last window to the first once
	// per cycle, and that jump measures the rebuild path, not the churn.
	period := 2 * (len(gammas) - 1)
	pingpong := func(i int) []dot11.MAC {
		idx := i % period
		if idx >= len(gammas) {
			idx = period - idx
		}
		return gammas[idx]
	}
	b.Run("kernel/path=incremental", func(b *testing.B) {
		var rt core.RegionTracker
		warm := func(i int) float64 {
			if _, err := core.MLocTracked(know, pingpong(i), &rt); err != nil {
				b.Fatal(err)
			}
			area, ok := rt.RegionArea()
			if !ok {
				b.Fatal("tracker has no region area after a canonical fix")
			}
			return area
		}
		for i := 0; i < period; i++ { // warm arenas over a full cycle
			warm(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			warm(i)
		}
	})
	b.Run("kernel/path=full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.MLoc(know, pingpong(i)); err != nil {
				b.Fatal(err)
			}
			_ = core.RegionArea(know, pingpong(i))
		}
	})

	endSec := float64(len(gammas)-1) * 30
	trackLoop := func(b *testing.B, loc core.Localizer) {
		eng, err := engine.New(engine.Config{
			Know: know, Store: store, Localizer: loc,
			WindowSec: 30, Workers: 1, CacheSize: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		var pts []core.TrackPoint
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pts, err = eng.Track(dev, 0, endSec, 30)
			if err != nil {
				b.Fatal(err)
			}
		}
		if len(pts) != len(gammas) {
			b.Fatalf("%d track points, want %d", len(pts), len(gammas))
		}
		b.ReportMetric(float64(len(pts)), "fixes/track")
	}
	b.Run("engine/path=incremental", func(b *testing.B) {
		trackLoop(b, core.MLocalizer{})
	})
	b.Run("engine/path=full", func(b *testing.B) {
		// The func adapter hides MLocalizer's tracked capability, pinning
		// the engine to the from-scratch path.
		trackLoop(b, core.LocalizerFunc{Method: "m-loc", Func: core.MLoc})
	})
}
